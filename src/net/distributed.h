#ifndef SURFER_NET_DISTRIBUTED_H_
#define SURFER_NET_DISTRIBUTED_H_

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <type_traits>
#include <unistd.h>
#include <utility>
#include <vector>

#include "cluster/topology.h"
#include "common/result.h"
#include "net/control.h"
#include "net/coordinator.h"
#include "net/frame.h"
#include "net/transport.h"
#include "obs/run_report.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "propagation/app_traits.h"
#include "propagation/config.h"
#include "runtime/combine_plan.h"
#include "runtime/fault.h"
#include "runtime/report.h"
#include "runtime/stats.h"
#include "runtime/timeline.h"
#include "runtime/wire_batch.h"
#include "storage/partitioned_graph.h"
#include "storage/replication.h"

namespace surfer {
namespace net {

/// Apps that can run distributed: wire-serializable messages (the mesh
/// carries WireBatches) plus trivially-copyable vertex states and virtual
/// outputs, because final results and replication updates cross process
/// boundaries as raw bytes.
template <typename App>
concept DistributableApp =
    PropagationApp<App> && runtime::WireSerializableApp<App> &&
    std::is_trivially_copyable_v<typename App::VertexState> &&
    std::is_trivially_copyable_v<typename internal::VirtualOutputOf<App>::type>;

/// Knobs of the distributed engine.
struct DistributedOptions {
  /// Worker processes; 0 means one per simulated machine. With fewer
  /// processes than machines, machine m is hosted by process
  /// (m % num_processes) — mirroring the threaded executor's worker
  /// ownership rule, so a process death is a correlated failure of its
  /// hosted machine group.
  uint32_t max_processes = 0;
  /// Wire-plane staging knobs (shared with the threaded runtime).
  runtime::WireBatchOptions wire;
  /// Task-granular fault plans. Here a plan kills the *process* hosting the
  /// planned machine (flushing completed-task output first), so recovery
  /// exercises real process death, reconnect-free mesh degradation, and
  /// first-alive-replica takeover.
  std::vector<runtime::RuntimeFaultPlan> faults;
  /// Deliver a real SIGTERM to the process hosting this machine before the
  /// given iteration (graceful decommission); kInvalidMachine = off.
  MachineId sigterm_machine = kInvalidMachine;
  int sigterm_iteration = 0;
  /// When non-empty, each worker process writes
  /// `dist_worker_<proc>.report.json` and `dist_worker_<proc>.trace.json`
  /// here at finalize (and on SIGTERM).
  std::string artifact_dir;
  /// Per-worker-process flight recorder (mailbox depth, RSS).
  obs::TelemetryOptions telemetry;
  /// Health plane: workers push a load snapshot to the coordinator every
  /// this-many milliseconds (0 = heartbeats off).
  uint32_t heartbeat_period_ms = 0;
  /// Clock-offset estimation: each mesh link runs an NTP-style ping exchange
  /// of this many pings during the rendezvous (0 = off). The per-peer
  /// offsets land in each worker's stats and trace artifacts, and correct
  /// the per-link latency series in the cluster report.
  uint32_t clock_sync_pings = 0;
  /// Online straggler detection: a process still holding up a round after
  /// straggler_multiple x the trailing-median round duration — but at least
  /// straggler_min_ms — is logged and counted, never aborted.
  double straggler_multiple = 4.0;
  uint32_t straggler_min_ms = 250;
  /// Live-status sink: receives the re-rendered cluster status table on
  /// every heartbeat or straggler flag (surfer_dist --watch). Null = off.
  std::function<void(const std::string&)> status_sink;
  /// Straggler injection for tests: process `stall_proc` sleeps `stall_ms`
  /// milliseconds at its first combine round of iteration `stall_iteration`
  /// (0xFFFFFFFF = no stall).
  uint32_t stall_proc = 0xFFFFFFFFu;
  int32_t stall_iteration = 0;
  uint32_t stall_ms = 0;
};

namespace detail {

/// The worker-process side of the distributed engine: hosts the machines
/// m % P == proc, executes their rounds as directed by the coordinator, and
/// exchanges WireBatch data frames with the other workers over the TCP mesh.
///
/// Bit-identity argument (the same one the threaded RuntimeExecutor makes):
/// exactly one machine produces a given (src partition -> dst partition)
/// stream per stage, each TCP connection is FIFO and drained by one receiver
/// thread into a FIFO mailbox, so chunks of a stream reach the destination
/// inbox in emission order; the combine side stable-sorts chunks by src
/// partition, concatenates, and stable-sorts records by target — exactly the
/// sequential inbox. Recovery preserves the argument because replayed
/// retained segments keep their original src machine and relative order, and
/// re-executed transfer tasks go back through a WireStager (identical merge
/// sequence) against *iteration-start* states (see next_states_ below).
template <typename App>
  requires DistributableApp<App>
class DistributedWorker {
 public:
  using VertexState = typename App::VertexState;
  using Message = typename App::Message;
  using VirtualOutput = typename internal::VirtualOutputOf<App>::type;

  DistributedWorker(const PartitionedGraph* graph, App app,
                    PropagationConfig config, DistributedOptions options,
                    uint32_t proc, Socket control)
      : graph_(graph),
        app_(std::move(app)),
        config_(config),
        options_(std::move(options)),
        proc_(proc),
        transport_(proc, std::move(control)) {}

  /// Runs the whole worker life cycle. Never returns: every path ends in
  /// _exit (0 clean/graceful, 2 fault or protocol failure).
  [[noreturn]] void Run() {
    InstallWorkerSignalHandlers();
    tracer_ = std::make_unique<obs::Tracer>();
    trace_origin_unix_us_ = NowUnixUs() - tracer_->WallNowUs();
    PlacementMsg placement;
    if (!transport_.Handshake(&placement).ok()) {
      Die();
    }
    if (!Setup(placement)) {
      Die();
    }
    for (;;) {
      Result<Frame> frame = transport_.ReadControl();
      if (!frame.ok()) {
        if (SigtermFlag()->load(std::memory_order_relaxed)) {
          GracefulExit();
        }
        Die();  // coordinator vanished mid-run
      }
      switch (frame->type) {
        case FrameType::kRound: {
          Result<RoundMsg> round = DecodeRound(frame->payload);
          if (!round.ok()) {
            Die();
          }
          ExecuteRound(*round);
          break;
        }
        case FrameType::kFinalize:
          Finalize();
          break;
        case FrameType::kShutdown:
          transport_.CloseAll();
          ::_exit(0);
        default:
          break;
      }
    }
  }

 private:
  /// One deserialized wire segment waiting in a partition's inbox; mirrors
  /// the threaded executor's chunk (src machine kept for refetch pricing).
  struct InboxChunk {
    PartitionId src = kInvalidPartition;
    MachineId src_machine = kInvalidMachine;
    uint64_t priced_bytes = 0;
    std::vector<std::pair<VertexId, Message>> real;
    std::vector<std::pair<uint64_t, Message>> virtuals;
  };

  static double NowUnixUs() {
    return static_cast<double>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
  }

  [[noreturn]] void Die() {
    transport_.CloseAll();
    ::_exit(2);
  }

  bool HostedHere(MachineId m) const { return m % num_procs_ == proc_; }

  bool Setup(const PlacementMsg& placement) {
    num_machines_ = placement.num_machines;
    num_partitions_ = placement.num_partitions;
    num_procs_ = transport_.num_procs();
    if (num_partitions_ != graph_->num_partitions() || num_machines_ == 0 ||
        placement.replication == 0) {
      return false;
    }
    fault_tolerant_ = placement.fault_tolerant != 0;
    fault_ = runtime::FaultController(placement.faults);
    heartbeat_period_ms_ = placement.heartbeat_period_ms;
    stall_proc_ = placement.stall_proc;
    stall_iteration_ = placement.stall_iteration;
    stall_ms_ = placement.stall_ms;
    if (heartbeat_period_ms_ > 0) {
      // Tick from ReadControl's idle poll: heartbeats flow between rounds
      // from the main thread, the sole writer on the control socket.
      transport_.SetIdleTick([this] { MaybeHeartbeat(); });
    }
    replicas_.assign(num_partitions_, {});
    if (placement.replicas.size() !=
        static_cast<size_t>(num_partitions_) * placement.replication) {
      return false;
    }
    for (PartitionId p = 0; p < num_partitions_; ++p) {
      for (uint32_t r = 0; r < placement.replication; ++r) {
        replicas_[p].push_back(
            placement.replicas[static_cast<size_t>(p) * placement.replication +
                               r]);
      }
    }
    for (MachineId m = 0; m < num_machines_; ++m) {
      if (HostedHere(m)) {
        hosted_.push_back(m);
      }
    }
    wire_combine_ = config_.local_combination && MergeableApp<App> &&
                    options_.wire.wire_combine;
    pool_ = std::make_unique<runtime::WireBufferPool>();
    for (MachineId m : hosted_) {
      stagers_.emplace(
          std::piecewise_construct, std::forward_as_tuple(m),
          std::forward_as_tuple(&app_, options_.wire, pool_.get(), m,
                                num_machines_, wire_combine_));
    }

    const Graph& g = graph_->encoded_graph();
    states_.clear();
    states_.reserve(g.num_vertices());
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      states_.push_back(app_.InitState(v, g.OutNeighbors(v)));
    }
    // Deferred-commit double buffer: transfer tasks (including recovery
    // re-execution, which can run *after* some combines of the same
    // iteration) always read states_, the value set at iteration start;
    // combine results land in next_states_ and commit at the next iteration
    // boundary. In-place mutation would poison re-executed transfers.
    next_states_ = states_;
    dirty_.assign(num_partitions_, 0);
    state_version_.assign(num_partitions_, -1);
    inboxes_.assign(num_partitions_, {});
    stage_tasks_done_.assign(num_machines_, 0);
    link_bytes_.assign(static_cast<size_t>(num_machines_) * num_machines_, 0);

    telemetry_ = std::make_unique<obs::TelemetryRecorder>(options_.telemetry);
    if (options_.telemetry.enabled) {
      telemetry_->RegisterGauge("dist_mailbox_depth", "frames", [this] {
        return static_cast<double>(transport_.ApproxMailboxDepth());
      });
      telemetry_->RegisterGauge("dist_inflight_bytes", "bytes", [this] {
        return static_cast<double>(transport_.InflightBytes());
      });
      telemetry_->RegisterGauge("dist_recv_latency_us", "us", [this] {
        return static_cast<double>(transport_.LastRecvLatencyUs());
      });
      // Registered only when the probe works: an always-zero gauge would
      // read as a measurement, not a failure to measure.
      if (obs::ReadMemoryUsage().available) {
        telemetry_->RegisterGauge(
            "proc_rss_bytes", "bytes",
            [] {
              return static_cast<double>(obs::ReadMemoryUsage().rss_bytes);
            },
            /*ceiling=*/0.0, /*period_multiple=*/16);
      }
      // The sampler thread must never take the process-directed SIGTERM:
      // only the main thread owns the graceful-exit interrupt.
      sigset_t block, old;
      sigemptyset(&block);
      sigaddset(&block, SIGTERM);
      pthread_sigmask(SIG_BLOCK, &block, &old);
      telemetry_->Start();
      pthread_sigmask(SIG_SETMASK, &old, nullptr);
    }
    return true;
  }

  // ------------------------------------------------------------ round driver

  void ExecuteRound(const RoundMsg& round) {
    obs::ScopedSpan span(
        tracer_.get(), "dist_round[" + std::to_string(round.seq) + "]", "net",
        {{"kind", std::to_string(static_cast<int>(round.kind))},
         {"iteration", std::to_string(round.iteration)}});
    current_stage_ = static_cast<uint32_t>(round.kind);
    current_iteration_ = round.iteration;
    current_round_seq_ = round.seq;
    // Receiver threads record link stats by round seq only; this map lets
    // BuildStatsMsg patch in the (iteration, kind) the seq belonged to.
    round_info_[round.seq] = {round.iteration,
                              static_cast<uint32_t>(round.kind)};
    if (proc_ == stall_proc_ && round.iteration == stall_iteration_ &&
        round.kind == RoundKind::kCombine && !stalled_) {
      // Injected straggler (tests): one long pause at this iteration's first
      // combine round, long enough for the online detector to flag us.
      stalled_ = true;
      std::this_thread::sleep_for(std::chrono::milliseconds(stall_ms_));
    }
    if (round.kind == RoundKind::kTransfer &&
        round.iteration != started_iteration_) {
      // First transfer round of a new iteration: commit last iteration's
      // combine results, drop last iteration's retention, advance the app.
      CommitPendingStates();
      started_iteration_ = round.iteration;
      if constexpr (IterationAwareApp<App>) {
        app_.OnIterationStart(round.iteration);
      }
      for (runtime::WireBatch& batch : retained_) {
        pool_->Release(std::move(batch.payload));
      }
      retained_.clear();
    }
    const RoundKind norm =
        round.kind == RoundKind::kResend ? RoundKind::kCombine : round.kind;
    if (stage_iteration_ != round.iteration || stage_kind_ != norm) {
      stage_iteration_ = round.iteration;
      stage_kind_ = norm;
      std::fill(stage_tasks_done_.begin(), stage_tasks_done_.end(), 0u);
    }
    if (round.kind == RoundKind::kResend) {
      ExecuteResend(round);
    } else {
      ExecuteNormal(round);
    }
  }

  void ExecuteNormal(const RoundMsg& round) {
    const runtime::RuntimeStage stage = round.kind == RoundKind::kTransfer
                                            ? runtime::RuntimeStage::kTransfer
                                            : runtime::RuntimeStage::kCombine;
    for (MachineId m : hosted_) {
      for (PartitionId p = 0; p < num_partitions_; ++p) {
        if (round.exec[p] != m) {
          continue;
        }
        if (fault_.ShouldKill(m, round.iteration, stage,
                              stage_tasks_done_[m])) {
          FaultExit();
        }
        if (round.kind == RoundKind::kTransfer) {
          RunTransferTask(p, m, round);
        } else {
          RunCombineTask(p, m, round);
        }
        ++stage_tasks_done_[m];
        ++tasks_executed_;
        if (round.recovery != 0) {
          ++tasks_reexecuted_;
        }
        SendTaskDone(p, m, round);
        if (round.kind == RoundKind::kTransfer) {
          stagers_.at(m).FlushExpired([&](runtime::WireBatch&& batch) {
            return ShipBatch(std::move(batch), /*resend=*/false,
                             /*retain=*/true);
          });
        }
        PumpMailbox();
      }
      if (round.kind == RoundKind::kTransfer) {
        stagers_.at(m).FlushAll([&](runtime::WireBatch&& batch) {
          return ShipBatch(std::move(batch), /*resend=*/false,
                           /*retain=*/true);
        });
      }
    }
    FinishRound(round);
  }

  /// Recovery-only round: rebuild the inboxes of the partitions in
  /// round.exec (their previous holders died) by replaying retained batches
  /// and re-executing the transfer tasks whose producer died with its
  /// retained output.
  void ExecuteResend(const RoundMsg& round) {
    // Clear before the first mailbox pop of this round: replayed frames that
    // raced ahead of our own replay work sit safely in the transport mailbox
    // until PumpMailbox runs (pumps only happen inside rounds).
    for (PartitionId p = 0; p < num_partitions_; ++p) {
      if (round.exec[p] != kInvalidMachine && HostedHere(round.exec[p])) {
        inboxes_[p].clear();
      }
    }
    ReplayRetained(round);
    for (MachineId m : hosted_) {
      for (PartitionId q = 0; q < num_partitions_; ++q) {
        if (round.reexec[q] != m) {
          continue;
        }
        ReexecTransfer(q, m, round);
        ++tasks_executed_;
        ++tasks_reexecuted_;
        SendTaskDone(q, m, round);
        PumpMailbox();
      }
    }
    FinishRound(round);
  }

  void FinishRound(const RoundMsg& round) {
    if (!transport_.BroadcastEos(round.seq).ok()) {
      Die();
    }
    barrier_waiting_ = true;
    for (;;) {
      PumpMailbox();
      if (transport_.RoundDrained(round.seq)) {
        break;
      }
      if (SigtermFlag()->load(std::memory_order_relaxed)) {
        GracefulExit();
      }
      MaybeHeartbeat();  // keep the health plane fed while the drain blocks
      transport_.WaitActivity();
    }
    barrier_waiting_ = false;
    // Every peer is dead or past-EOS, and each receiver pushes a link's data
    // frames before recording its EOS — one final pump empties the round.
    PumpMailbox();
    SeqMsg done;
    done.seq = round.seq;
    done.src_proc = proc_;
    if (!transport_.SendControl(FrameType::kRoundDone, EncodeSeq(done)).ok()) {
      Die();
    }
    current_stage_ = kIdleStage;
  }

  /// Sends one heartbeat if the period elapsed. Main-thread only (idle tick
  /// + barrier drain loop), so it never races other control-plane writes.
  void MaybeHeartbeat() {
    if (heartbeat_period_ms_ == 0) {
      return;
    }
    const double now = NowUnixUs();
    if (now - last_heartbeat_us_ <
        static_cast<double>(heartbeat_period_ms_) * 1000.0) {
      return;
    }
    last_heartbeat_us_ = now;
    HeartbeatMsg hb;
    hb.proc = proc_;
    hb.stage = current_stage_;
    hb.iteration = current_iteration_;
    hb.round_seq = current_round_seq_;
    hb.mailbox_frames = transport_.ApproxMailboxDepth();
    hb.inflight_bytes = transport_.InflightBytes();
    for (const auto& [m, stager] : stagers_) {
      hb.staged_wire_bytes += stager.OpenBytes();
    }
    const obs::MemoryUsage memory = obs::ReadMemoryUsage();
    hb.rss_bytes = memory.available ? memory.rss_bytes : 0;
    hb.barrier_waiting = barrier_waiting_ ? 1 : 0;
    hb.unix_us = static_cast<uint64_t>(now);
    if (transport_.SendControl(FrameType::kHeartbeat, EncodeHeartbeat(hb))
            .ok()) {
      ++heartbeats_sent_;
    }
  }

  void SendTaskDone(PartitionId p, MachineId m, const RoundMsg& round) {
    TaskDoneMsg msg;
    msg.partition = p;
    msg.machine = m;
    msg.iteration = round.iteration;
    msg.kind = static_cast<uint8_t>(round.kind);
    if (!transport_.SendControl(FrameType::kTaskDone, EncodeTaskDone(msg))
             .ok()) {
      Die();
    }
  }

  // -------------------------------------------------------------- data plane

  /// Books and delivers one sealed batch. Local destinations (a machine this
  /// process hosts) short-circuit into the inbox; remote ones go over the
  /// mesh. Normal sends are booked into the link matrix (priced bytes, the
  /// quantity that reconciles with the analytic model) and retained for
  /// replay in fault-tolerant runs; resend traffic is booked separately.
  double ShipBatch(runtime::WireBatch&& batch, bool resend, bool retain) {
    if (!resend) {
      link_bytes_[static_cast<size_t>(batch.src_machine) * num_machines_ +
                  batch.dst_machine] += batch.priced_bytes;
      messages_sent_ += batch.num_messages;
      ++buffers_sent_;
    } else {
      resend_bytes_ += batch.payload.size();
    }
    if (retain && fault_tolerant_) {
      retained_.push_back(batch);  // deep copy; replayed if a holder dies
    }
    const uint32_t dst_proc = batch.dst_machine % num_procs_;
    if (dst_proc == proc_) {
      ApplyBatch(batch);
    } else {
      (void)transport_.SendPeer(dst_proc, FrameType::kData,
                                EncodeWireBatch(batch));
    }
    pool_->Release(std::move(batch.payload));
    return 0.0;
  }

  void ApplyBatch(const runtime::WireBatch& batch) {
    runtime::WireBatchReader<Message> reader(batch);
    for (;;) {
      // Decode into a recycled chunk's record vectors (capacity kept):
      // steady-state unpacking allocates nothing. The worker loop is
      // single-threaded, so the pool needs no locking.
      InboxChunk chunk;
      if (!chunk_pool_.empty()) {
        chunk = std::move(chunk_pool_.back());
        chunk_pool_.pop_back();
      }
      typename runtime::WireBatchReader<Message>::Segment segment;
      segment.real = std::move(chunk.real);
      segment.virtuals = std::move(chunk.virtuals);
      const bool decoded = reader.NextInto(segment);
      chunk.real = std::move(segment.real);
      chunk.virtuals = std::move(segment.virtuals);
      if (!decoded) {
        if (chunk_pool_.size() < kChunkPoolCap) {
          chunk_pool_.push_back(std::move(chunk));
        }
        break;
      }
      if (segment.header.dst_partition >= num_partitions_) {
        chunk.real.clear();
        chunk.virtuals.clear();
        if (chunk_pool_.size() < kChunkPoolCap) {
          chunk_pool_.push_back(std::move(chunk));
        }
        continue;
      }
      chunk.src = segment.header.src_partition;
      chunk.src_machine = batch.src_machine;
      chunk.priced_bytes = segment.header.priced_bytes;
      inboxes_[segment.header.dst_partition].push_back(std::move(chunk));
    }
  }

  void PumpMailbox() {
    runtime::WireBatch batch;
    while (transport_.TryPopData(&batch)) {
      ApplyBatch(batch);
      batch = runtime::WireBatch{};
    }
    StateUpdateMsg update;
    while (transport_.TryPopUpdate(&update)) {
      ApplyUpdate(update);
    }
  }

  // -------------------------------------------------------------- task logic

  void RunTransferTask(PartitionId p, MachineId m, const RoundMsg& round) {
    const Graph& g = graph_->encoded_graph();
    const PartitionMeta& meta = graph_->partition(p);
    std::vector<std::vector<std::pair<VertexId, Message>>> real_out(
        num_partitions_);
    std::vector<std::vector<std::pair<uint64_t, Message>>> virtual_out(
        num_partitions_);
    PropagationEmitter<Message> emitter;
    for (VertexId v = meta.begin; v < meta.end; ++v) {
      app_.Transfer(v, states_[v], g.OutNeighbors(v), emitter);
      emitter.Drain(
          [&](VertexId target, Message message) {
            real_out[graph_->PartitionOf(target)].emplace_back(
                target, std::move(message));
          },
          [&](uint64_t target, Message message) {
            virtual_out[target % num_partitions_].emplace_back(
                target, std::move(message));
          });
    }
    runtime::WireStager<App>& stager = stagers_.at(m);
    for (PartitionId dst = 0; dst < num_partitions_; ++dst) {
      if (real_out[dst].empty() && virtual_out[dst].empty()) {
        continue;
      }
      stager.StageTask(p, dst, round.route[dst], real_out[dst],
                       virtual_out[dst], [&](runtime::WireBatch&& batch) {
                         return ShipBatch(std::move(batch), /*resend=*/false,
                                          /*retain=*/true);
                       });
    }
  }

  void RunCombineTask(PartitionId p, MachineId m, const RoundMsg& round) {
    const Graph& g = graph_->encoded_graph();
    const PartitionMeta& meta = graph_->partition(p);
    std::vector<InboxChunk>& chunks = inboxes_[p];
    std::stable_sort(chunks.begin(), chunks.end(),
                     [](const InboxChunk& a, const InboxChunk& b) {
                       return a.src < b.src;
                     });
    if (m != replicas_[p][0]) {
      // Appendix-B recovery pricing: a non-primary executor re-fetches the
      // message spills the primary had already received.
      for (const InboxChunk& chunk : chunks) {
        if (chunk.src_machine != m) {
          refetch_bytes_ += chunk.priced_bytes;
        }
      }
    }
    // Sort-free regroup (runtime/combine_plan.h): counting scatter over the
    // src-sorted chunk concatenation reproduces the legacy per-message
    // stable_sort's permutation byte for byte.
    const auto scatter_start = std::chrono::steady_clock::now();
    std::vector<Message> grouped;
    const uint64_t scattered = runtime::GroupChunkedMessages(
        combine_scratch_, meta.begin, meta.end, chunks, grouped);
    std::vector<std::pair<uint64_t, Message>> virtual_messages;
    for (InboxChunk& chunk : chunks) {
      std::move(chunk.virtuals.begin(), chunk.virtuals.end(),
                std::back_inserter(virtual_messages));
    }
    combine_scatter_seconds_ +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      scatter_start)
            .count();
    combine_messages_scattered_ += scattered;
    // Park consumed chunks on the freelist (capacity kept) instead of the
    // legacy clear + shrink_to_fit churn.
    for (InboxChunk& chunk : chunks) {
      if (chunk_pool_.size() >= kChunkPoolCap) {
        break;
      }
      chunk.real.clear();
      chunk.virtuals.clear();
      chunk_pool_.push_back(std::move(chunk));
    }
    chunks.clear();

    // Frontier gating: silent vertices of a SilentVertexSkippableApp skip
    // the Combine call (identity by the app's contract) but still commit
    // states_[v] into next_states_, which ReplicateState snapshots whole.
    bool gate = false;
    if constexpr (SilentVertexSkippableApp<App>) {
      gate = config_.frontier_gating;
    }
    std::vector<Message> vertex_messages;
    for (VertexId v = meta.begin; v < meta.end; ++v) {
      const size_t i = static_cast<size_t>(v - meta.begin);
      if (gate && !combine_scratch_.Received(i)) {
        next_states_[v] = states_[v];
        ++frontier_vertices_skipped_;
        continue;
      }
      vertex_messages.clear();
      for (size_t j = combine_scratch_.RunBegin(i),
                  end = combine_scratch_.RunEnd(i);
           j < end; ++j) {
        vertex_messages.push_back(std::move(grouped[j]));
      }
      VertexState state = states_[v];
      app_.Combine(v, state, g.OutNeighbors(v), vertex_messages);
      next_states_[v] = state;
    }
    combine_scratch_.Reset();
    dirty_[p] = 1;
    state_version_[p] = round.iteration;

    std::vector<std::pair<uint64_t, VirtualOutput>> virtual_results;
    if constexpr (VirtualVertexApp<App>) {
      runtime::GroupVirtualMessages(vgroup_scratch_, virtual_messages,
                                    virtual_grouped_);
      std::vector<Message> group;
      for (size_t i = 0; i < vgroup_scratch_.ids.size(); ++i) {
        const uint64_t id = vgroup_scratch_.ids[i];
        group.clear();
        for (size_t j = vgroup_scratch_.offsets[i],
                    end = vgroup_scratch_.offsets[i + 1];
             j < end; ++j) {
          group.push_back(std::move(virtual_grouped_[j]));
        }
        virtual_results.emplace_back(id, app_.CombineVirtual(id, group));
      }
      for (const auto& [id, output] : virtual_results) {
        virtual_acc_[id] = {round.iteration, output};
      }
    }
    if (fault_tolerant_) {
      // Replicate *before* TASK_DONE: once the coordinator marks p done, a
      // replica holder must already be able to take over from this state.
      ReplicateState(p, round.iteration, meta, virtual_results);
    }
  }

  void ReplicateState(
      PartitionId p, int32_t iteration, const PartitionMeta& meta,
      const std::vector<std::pair<uint64_t, VirtualOutput>>& virtual_results) {
    StateUpdateMsg msg;
    msg.partition = p;
    msg.iteration = iteration;
    msg.begin = meta.begin;
    msg.count = meta.end - meta.begin;
    msg.states.resize(static_cast<size_t>(msg.count) * sizeof(VertexState));
    if (msg.count > 0) {
      std::memcpy(msg.states.data(), &next_states_[meta.begin],
                  msg.states.size());
    }
    msg.virtual_count = static_cast<uint32_t>(virtual_results.size());
    for (const auto& [id, output] : virtual_results) {
      runtime::AppendPod(msg.virtuals, id);
      runtime::AppendPod(msg.virtuals, output);
    }
    const std::vector<uint8_t> payload = EncodeStateUpdate(msg);
    std::set<uint32_t> targets;
    for (MachineId r : replicas_[p]) {
      if (r != kInvalidMachine && r < num_machines_ && !HostedHere(r)) {
        targets.insert(r % num_procs_);
      }
    }
    for (uint32_t q : targets) {
      (void)transport_.SendPeer(q, FrameType::kStateUpdate, payload);
      replication_bytes_ += payload.size();
    }
  }

  void ApplyUpdate(const StateUpdateMsg& msg) {
    if (msg.partition >= num_partitions_ ||
        msg.iteration <= state_version_[msg.partition]) {
      return;
    }
    const size_t expect = static_cast<size_t>(msg.count) * sizeof(VertexState);
    if (msg.states.size() != expect ||
        static_cast<size_t>(msg.begin) + msg.count > next_states_.size()) {
      return;
    }
    if (msg.count > 0) {
      std::memcpy(&next_states_[msg.begin], msg.states.data(), expect);
    }
    dirty_[msg.partition] = 1;
    state_version_[msg.partition] = msg.iteration;
    constexpr size_t kEntry = sizeof(uint64_t) + sizeof(VirtualOutput);
    if (msg.virtuals.size() == static_cast<size_t>(msg.virtual_count) * kEntry) {
      const uint8_t* base = msg.virtuals.data();
      for (uint32_t i = 0; i < msg.virtual_count; ++i) {
        const uint64_t id = runtime::ReadPod<uint64_t>(base + i * kEntry);
        const VirtualOutput output = runtime::ReadPod<VirtualOutput>(
            base + i * kEntry + sizeof(uint64_t));
        virtual_acc_[id] = {msg.iteration, output};
      }
    }
  }

  void CommitPendingStates() {
    for (PartitionId p = 0; p < num_partitions_; ++p) {
      if (!dirty_[p]) {
        continue;
      }
      const PartitionMeta& meta = graph_->partition(p);
      std::copy(next_states_.begin() + meta.begin,
                next_states_.begin() + meta.end, states_.begin() + meta.begin);
      dirty_[p] = 0;
    }
  }

  // ---------------------------------------------------------------- recovery

  /// Replays every retained segment destined to a partition being rebuilt,
  /// preserving the original producer machine and chronological order, so
  /// the rebuilt inbox sorts into the identical sequential order.
  void ReplayRetained(const RoundMsg& round) {
    if (retained_.empty()) {
      return;
    }
    std::map<std::pair<MachineId, MachineId>, runtime::WireBatch> open;
    auto ship = [&](runtime::WireBatch&& batch) {
      if (batch.payload.empty()) {
        pool_->Release(std::move(batch.payload));
        return;
      }
      ShipBatch(std::move(batch), /*resend=*/true, /*retain=*/false);
    };
    for (const runtime::WireBatch& batch : retained_) {
      const uint8_t* base = batch.payload.data();
      size_t offset = 0;
      while (offset + sizeof(runtime::WireSegmentHeader) <=
             batch.payload.size()) {
        const auto header =
            runtime::ReadPod<runtime::WireSegmentHeader>(base + offset);
        const size_t record_bytes =
            (header.kind == runtime::kWireSegmentReal ? sizeof(VertexId)
                                                      : sizeof(uint64_t)) +
            sizeof(Message);
        const size_t segment_bytes = sizeof(runtime::WireSegmentHeader) +
                                     static_cast<size_t>(header.count) *
                                         record_bytes;
        if (offset + segment_bytes > batch.payload.size()) {
          break;  // malformed retention; drop the tail rather than misparse
        }
        const MachineId target = header.dst_partition < round.route.size()
                                     ? round.route[header.dst_partition]
                                     : kInvalidMachine;
        if (target != kInvalidMachine) {
          const auto key = std::make_pair(batch.src_machine, target);
          auto it = open.find(key);
          if (it == open.end()) {
            runtime::WireBatch fresh;
            fresh.src_machine = batch.src_machine;
            fresh.dst_machine = target;
            fresh.payload = pool_->Acquire();
            it = open.emplace(key, std::move(fresh)).first;
          }
          runtime::WireBatch& out = it->second;
          if (!out.payload.empty() &&
              out.payload.size() + segment_bytes >
                  options_.wire.max_batch_bytes) {
            runtime::WireBatch full = std::move(out);
            out = runtime::WireBatch{};
            out.src_machine = batch.src_machine;
            out.dst_machine = target;
            out.payload = pool_->Acquire();
            ship(std::move(full));
          }
          out.payload.insert(out.payload.end(), base + offset,
                             base + offset + segment_bytes);
          out.num_segments += 1;
          out.num_messages += header.count;
          out.priced_bytes += header.priced_bytes;
        }
        offset += segment_bytes;
      }
    }
    for (auto& [key, batch] : open) {
      ship(std::move(batch));
    }
  }

  /// Re-executes a transfer task whose producer process died with its
  /// retained output. The full task re-runs against iteration-start states
  /// through WireStagers (identical duplicate-merge folds); streams for the
  /// partitions being rebuilt are sent, the rest are retained only — so a
  /// later death in this same iteration still finds a complete copy here.
  /// Two stagers keep rebuilt and retain-only streams in separate batches.
  void ReexecTransfer(PartitionId q, MachineId m, const RoundMsg& round) {
    const Graph& g = graph_->encoded_graph();
    const PartitionMeta& meta = graph_->partition(q);
    std::vector<std::vector<std::pair<VertexId, Message>>> real_out(
        num_partitions_);
    std::vector<std::vector<std::pair<uint64_t, Message>>> virtual_out(
        num_partitions_);
    PropagationEmitter<Message> emitter;
    for (VertexId v = meta.begin; v < meta.end; ++v) {
      app_.Transfer(v, states_[v], g.OutNeighbors(v), emitter);
      emitter.Drain(
          [&](VertexId target, Message message) {
            real_out[graph_->PartitionOf(target)].emplace_back(
                target, std::move(message));
          },
          [&](uint64_t target, Message message) {
            virtual_out[target % num_partitions_].emplace_back(
                target, std::move(message));
          });
    }
    runtime::WireStager<App> send_stager(&app_, options_.wire, pool_.get(), m,
                                         num_machines_, wire_combine_);
    runtime::WireStager<App> retain_stager(&app_, options_.wire, pool_.get(),
                                           m, num_machines_, wire_combine_);
    auto send = [&](runtime::WireBatch&& batch) {
      return ShipBatch(std::move(batch), /*resend=*/true, /*retain=*/true);
    };
    auto retain_only = [&](runtime::WireBatch&& batch) {
      retained_.push_back(batch);
      pool_->Release(std::move(batch.payload));
      return 0.0;
    };
    for (PartitionId dst = 0; dst < num_partitions_; ++dst) {
      if (real_out[dst].empty() && virtual_out[dst].empty()) {
        continue;
      }
      const MachineId target = round.route[dst];
      if (target != kInvalidMachine) {
        send_stager.StageTask(q, dst, target, real_out[dst], virtual_out[dst],
                              send);
      } else {
        retain_stager.StageTask(q, dst, replicas_[dst][0], real_out[dst],
                                virtual_out[dst], retain_only);
      }
    }
    send_stager.FlushAll(send);
    retain_stager.FlushAll(retain_only);
  }

  // ------------------------------------------------------------------- exits

  /// Planned process death (fault plan hit). Completed tasks' output
  /// survives the crash in the paper's model, so staged batches flush and
  /// the exit waits until every sent frame is acknowledged as *consumed* by
  /// its peer — closing earlier could RST away kernel-buffered output.
  [[noreturn]] void FaultExit() {
    for (auto& [m, stager] : stagers_) {
      stager.FlushAll([&](runtime::WireBatch&& batch) {
        return ShipBatch(std::move(batch), /*resend=*/false, /*retain=*/true);
      });
    }
    (void)transport_.WaitDataAcked();
    transport_.CloseAll();
    ::_exit(2);
  }

  /// SIGTERM: flush staged batches, persist run report and telemetry, then
  /// exit cleanly. The coordinator treats the EOF like any machine death and
  /// recovers hosted partitions on their replicas.
  [[noreturn]] void GracefulExit() {
    for (auto& [m, stager] : stagers_) {
      stager.FlushAll([&](runtime::WireBatch&& batch) {
        return ShipBatch(std::move(batch), /*resend=*/false, /*retain=*/true);
      });
    }
    (void)transport_.WaitDataAcked();
    WriteArtifacts();
    transport_.CloseAll();
    ::_exit(0);
  }

  // ---------------------------------------------------------------- finalize

  void Finalize() {
    CommitPendingStates();
    // The coordinator's finalize drain expects no control traffic after
    // kFinalDone; stop heartbeating for good before the stats go out.
    heartbeat_period_ms_ = 0;
    telemetry_->Stop();
    const WorkerStatsMsg stats = BuildStatsMsg();
    if (!transport_
             .SendControl(FrameType::kWorkerStats, EncodeWorkerStats(stats))
             .ok()) {
      Die();
    }
    for (PartitionId p = 0; p < num_partitions_; ++p) {
      if (state_version_[p] < 0) {
        continue;
      }
      const PartitionMeta& meta = graph_->partition(p);
      FinalStateMsg msg;
      msg.partition = p;
      msg.version = state_version_[p];
      msg.begin = meta.begin;
      msg.count = meta.end - meta.begin;
      msg.states.resize(static_cast<size_t>(msg.count) * sizeof(VertexState));
      if (msg.count > 0) {
        std::memcpy(msg.states.data(), &states_[meta.begin],
                    msg.states.size());
      }
      if (!transport_
               .SendControl(FrameType::kFinalState, EncodeFinalState(msg))
               .ok()) {
        Die();
      }
    }
    if (!virtual_acc_.empty()) {
      FinalVirtualMsg msg;
      msg.entry_bytes = sizeof(VirtualOutput);
      msg.count = static_cast<uint32_t>(virtual_acc_.size());
      for (const auto& [id, entry] : virtual_acc_) {
        runtime::AppendPod(msg.entries, id);
        runtime::AppendPod(msg.entries, entry.first);   // int32_t version
        runtime::AppendPod(msg.entries, entry.second);  // VirtualOutput
      }
      if (!transport_
               .SendControl(FrameType::kFinalVirtual, EncodeFinalVirtual(msg))
               .ok()) {
        Die();
      }
    }
    const std::string report = BuildReport().Write(2);
    std::vector<uint8_t> report_bytes(report.begin(), report.end());
    if (!transport_.SendControl(FrameType::kWorkerReport, report_bytes).ok()) {
      Die();
    }
    WriteArtifacts();
    if (!transport_.SendControl(FrameType::kFinalDone).ok()) {
      Die();
    }
  }

  WorkerStatsMsg BuildStatsMsg() {
    WorkerStatsMsg stats;
    stats.tasks_executed = tasks_executed_;
    stats.tasks_reexecuted = tasks_reexecuted_;
    stats.messages_sent = messages_sent_;
    stats.buffers_sent = buffers_sent_;
    for (const auto& [m, stager] : stagers_) {
      const runtime::WireStagerStats& ws = stager.stats();
      stats.wire_batches_sent += ws.batches_sealed;
      stats.wire_segments_sent += ws.segments_sealed;
      stats.wire_payload_bytes += ws.payload_bytes;
      stats.wire_messages_combined += ws.messages_combined;
      stats.wire_flush_size += ws.flush_size;
      stats.wire_flush_deadline += ws.flush_deadline;
      stats.wire_flush_stage_end += ws.flush_stage_end;
    }
    const runtime::WireBufferPool::Stats pool = pool_->stats();
    stats.pool_buffers_acquired = pool.acquires;
    stats.pool_buffers_reused = pool.reuses;
    stats.refetch_bytes = refetch_bytes_;
    stats.tcp_bytes_sent = transport_.tcp_bytes_sent();
    stats.tcp_frames_sent = transport_.tcp_frames_sent();
    stats.resend_bytes = resend_bytes_;
    stats.replication_bytes = replication_bytes_;
    stats.combine_messages_scattered = combine_messages_scattered_;
    stats.frontier_vertices_skipped = frontier_vertices_skipped_;
    stats.combine_scatter_micros =
        static_cast<uint64_t>(combine_scatter_seconds_ * 1e6);
    stats.peak_rss_bytes = obs::ReadMemoryUsage().peak_rss_bytes;
    stats.link_bytes = link_bytes_;
    stats.heartbeats_sent = heartbeats_sent_;
    stats.clock_synced = transport_.clock_synced() ? 1 : 0;
    stats.clock_offset_us = transport_.ClockOffsets();
    stats.clock_uncertainty_us = transport_.ClockUncertainties();
    stats.round_link_stats = transport_.DrainLinkStats();
    for (RoundLinkStat& link : stats.round_link_stats) {
      // The receiver thread only knows the round seq; resolve the round's
      // (iteration, kind) from the rounds this worker actually executed.
      const auto it = round_info_.find(link.seq);
      if (it != round_info_.end()) {
        link.iteration = it->second.first;
        link.kind = it->second.second;
      }
    }
    return stats;
  }

  runtime::RuntimeStats LocalStats() {
    runtime::RuntimeStats stats;
    stats.num_workers = static_cast<uint32_t>(hosted_.size());
    stats.num_machines = num_machines_;
    stats.num_processes = num_procs_;
    stats.iterations = config_.iterations;
    stats.tasks_executed = tasks_executed_;
    stats.tasks_reexecuted = tasks_reexecuted_;
    stats.messages_sent = messages_sent_;
    stats.buffers_sent = buffers_sent_;
    for (const auto& [m, stager] : stagers_) {
      const runtime::WireStagerStats& ws = stager.stats();
      stats.wire_batches_sent += ws.batches_sealed;
      stats.wire_segments_sent += ws.segments_sealed;
      stats.wire_payload_bytes += ws.payload_bytes;
      stats.wire_messages_combined += ws.messages_combined;
      stats.wire_flush_size += ws.flush_size;
      stats.wire_flush_deadline += ws.flush_deadline;
      stats.wire_flush_stage_end += ws.flush_stage_end;
      stats.batch_fill.Merge(ws.batch_fill);
    }
    const runtime::WireBufferPool::Stats pool = pool_->stats();
    stats.pool_buffers_acquired = pool.acquires;
    stats.pool_buffers_reused = pool.reuses;
    stats.refetch_bytes = refetch_bytes_;
    stats.tcp_bytes_sent = transport_.tcp_bytes_sent();
    stats.tcp_frames_sent = transport_.tcp_frames_sent();
    stats.resend_bytes = resend_bytes_;
    stats.replication_bytes = replication_bytes_;
    stats.combine_messages_scattered = combine_messages_scattered_;
    stats.frontier_vertices_skipped = frontier_vertices_skipped_;
    stats.combine_scatter_seconds = combine_scatter_seconds_;
    stats.link_bytes = link_bytes_;
    stats.telemetry_samples = telemetry_->samples_taken();
    stats.telemetry_samples_dropped = telemetry_->total_dropped();
    const obs::MemoryUsage memory = obs::ReadMemoryUsage();
    stats.rss_bytes = memory.rss_bytes;
    stats.peak_rss_bytes = memory.peak_rss_bytes;
    return stats;
  }

  obs::JsonValue BuildReport() {
    obs::RunReportOptions report_options;
    report_options.name = "surfer_dist_worker_" + std::to_string(proc_);
    std::string machines;
    for (MachineId m : hosted_) {
      machines += (machines.empty() ? "" : ",") + std::to_string(m);
    }
    report_options.notes = "distributed worker process " +
                           std::to_string(proc_) + "/" +
                           std::to_string(num_procs_) + " hosting machines [" +
                           machines + "]";
    const obs::JsonValue runtime_block =
        runtime::RuntimeStatsToJson(LocalStats());
    obs::JsonValue telemetry_block;
    const bool have_telemetry = telemetry_->enabled();
    if (have_telemetry) {
      telemetry_block = telemetry_->ToJson();
    }
    return obs::BuildRunReport(report_options, nullptr, nullptr, tracer_.get(),
                               &runtime_block, nullptr,
                               have_telemetry ? &telemetry_block : nullptr);
  }

  void WriteArtifacts() {
    if (options_.artifact_dir.empty()) {
      return;
    }
    telemetry_->Stop();
    const std::string stem =
        options_.artifact_dir + "/dist_worker_" + std::to_string(proc_);
    (void)obs::WriteRunReport(stem + ".report.json", BuildReport());
    obs::JsonValue trace = tracer_->ToChromeJson();
    if (trace.is_object()) {
      // Wall-clock anchor of this tracer's t=0, so surfer_trace merge can
      // align per-process timelines.
      trace.Set("origin_unix_us", obs::JsonValue(trace_origin_unix_us_));
      if (transport_.clock_synced()) {
        // Handshake-estimated peer-clock offsets: `surfer_trace merge`
        // prefers these over the wall-clock origins for shard alignment.
        obs::JsonValue sync = obs::JsonValue::MakeObject();
        sync.Set("proc", static_cast<uint64_t>(proc_));
        obs::JsonValue offsets = obs::JsonValue::MakeArray();
        for (const int64_t offset : transport_.ClockOffsets()) {
          offsets.Append(obs::JsonValue(offset));
        }
        obs::JsonValue uncertainty = obs::JsonValue::MakeArray();
        for (const uint64_t u : transport_.ClockUncertainties()) {
          uncertainty.Append(obs::JsonValue(u));
        }
        sync.Set("offsets_us", std::move(offsets));
        sync.Set("uncertainty_us", std::move(uncertainty));
        trace.Set("clock_sync", std::move(sync));
      }
    }
    (void)obs::WriteRunReport(stem + ".trace.json", trace);
  }

  // -------------------------------------------------------------------------

  const PartitionedGraph* graph_;
  App app_;
  PropagationConfig config_;
  DistributedOptions options_;
  const uint32_t proc_;
  WorkerTransport transport_;

  uint32_t num_machines_ = 0;
  uint32_t num_partitions_ = 0;
  uint32_t num_procs_ = 1;
  bool fault_tolerant_ = false;
  bool wire_combine_ = false;
  runtime::FaultController fault_;
  std::vector<std::vector<MachineId>> replicas_;
  std::vector<MachineId> hosted_;
  std::unique_ptr<runtime::WireBufferPool> pool_;
  std::map<MachineId, runtime::WireStager<App>> stagers_;

  /// Committed states (iteration-start view, read by transfer tasks) and the
  /// in-flight combine results of the current iteration (see Setup).
  std::vector<VertexState> states_;
  std::vector<VertexState> next_states_;
  std::vector<uint8_t> dirty_;            ///< partition combined/updated
  std::vector<int32_t> state_version_;    ///< iteration of last combine, -1 none
  std::vector<std::vector<InboxChunk>> inboxes_;
  /// Regroup scratch (runtime/combine_plan.h) and the recycled-chunk
  /// freelist. The worker loop runs one task at a time, so one scratch of
  /// each kind serves every hosted partition.
  runtime::CombineScratch combine_scratch_;
  runtime::VirtualGroupScratch vgroup_scratch_;
  std::vector<Message> virtual_grouped_;
  std::vector<InboxChunk> chunk_pool_;
  static constexpr size_t kChunkPoolCap = 256;
  /// id -> (iteration of last update, output); the coordinator-side merge
  /// keeps the max-iteration entry across processes.
  std::map<uint64_t, std::pair<int32_t, VirtualOutput>> virtual_acc_;
  /// Normal sends of the current iteration (deep copies), replayed when an
  /// inbox holder dies. Cleared at each iteration boundary.
  std::vector<runtime::WireBatch> retained_;

  int started_iteration_ = -1;
  int stage_iteration_ = -1;
  RoundKind stage_kind_ = RoundKind::kResend;
  std::vector<uint32_t> stage_tasks_done_;

  /// Health-plane state (main thread only). current_* mirror the round in
  /// flight for heartbeat snapshots; round_info_ maps round seq to
  /// (iteration, kind) so link stats recorded by seq can be attributed.
  uint32_t heartbeat_period_ms_ = 0;
  double last_heartbeat_us_ = 0.0;
  uint64_t heartbeats_sent_ = 0;
  uint32_t current_stage_ = kIdleStage;
  int32_t current_iteration_ = 0;
  uint64_t current_round_seq_ = 0;
  bool barrier_waiting_ = false;
  std::map<uint64_t, std::pair<int32_t, uint32_t>> round_info_;
  /// Injected-straggler knobs (tests); stalled_ makes the pause one-shot.
  uint32_t stall_proc_ = 0xFFFFFFFFu;
  int32_t stall_iteration_ = 0;
  uint32_t stall_ms_ = 0;
  bool stalled_ = false;

  uint64_t tasks_executed_ = 0;
  uint64_t tasks_reexecuted_ = 0;
  uint64_t messages_sent_ = 0;
  uint64_t buffers_sent_ = 0;
  uint64_t refetch_bytes_ = 0;
  uint64_t resend_bytes_ = 0;
  uint64_t replication_bytes_ = 0;
  uint64_t combine_messages_scattered_ = 0;
  uint64_t frontier_vertices_skipped_ = 0;
  double combine_scatter_seconds_ = 0.0;
  std::vector<uint64_t> link_bytes_;

  std::unique_ptr<obs::Tracer> tracer_;
  std::unique_ptr<obs::TelemetryRecorder> telemetry_;
  double trace_origin_unix_us_ = 0.0;
};

}  // namespace detail

/// Parent-process front end of the distributed engine: forks one worker
/// process per machine group, lets DistributedCoordinator drive the BSP
/// rounds over the control plane, then assembles the version-merged final
/// states and the cluster-wide stats. Mirrors RuntimeExecutor's public
/// surface so core::RunApp can treat the two engines uniformly.
template <typename App>
  requires DistributableApp<App>
class DistributedExecutor {
 public:
  using VertexState = typename App::VertexState;
  using Message = typename App::Message;
  using VirtualOutput = typename internal::VirtualOutputOf<App>::type;

  DistributedExecutor(const PartitionedGraph* graph,
                      const ReplicatedPlacement* placement,
                      const Topology* topology, App app,
                      PropagationConfig config, DistributedOptions options = {})
      : graph_(graph),
        placement_(placement),
        topology_(topology),
        app_(std::move(app)),
        config_(config),
        options_(std::move(options)) {}

  Status Run() {
    SURFER_RETURN_IF_ERROR(Validate());
    const auto wall_start = std::chrono::steady_clock::now();
    const uint32_t num_machines = topology_->num_machines();
    const uint32_t num_processes =
        options_.max_processes == 0
            ? num_machines
            : std::min(options_.max_processes, num_machines);

    CoordinatorParams params;
    params.num_processes = num_processes;
    params.num_machines = num_machines;
    params.iterations = config_.iterations;
    params.placement = BuildPlacementMsg(num_machines);
    params.replicas = placement_;
    params.sigterm_machine = options_.sigterm_machine;
    params.sigterm_iteration = options_.sigterm_iteration;
    params.straggler_multiple = options_.straggler_multiple;
    params.straggler_min_ms = options_.straggler_min_ms;
    params.status_sink = options_.status_sink;

    DistributedCoordinator coordinator(
        params, [this](uint32_t proc, Socket control) {
          detail::DistributedWorker<App> worker(graph_, app_, config_,
                                                options_, proc,
                                                std::move(control));
          worker.Run();  // never returns
        });
    SURFER_ASSIGN_OR_RETURN(CoordinatorOutcome outcome, coordinator.Run());
    SURFER_RETURN_IF_ERROR(Assemble(outcome, num_processes, num_machines));
    stats_.wall_seconds = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - wall_start)
                              .count();
    return Status::OK();
  }

  const std::vector<VertexState>& states() const { return states_; }

  const VertexState& StateOfOriginal(VertexId original) const {
    return states_[graph_->encoding().ToEncoded(original)];
  }

  const std::map<uint64_t, VirtualOutput>& virtual_outputs() const {
    return virtual_outputs_;
  }

  const runtime::RuntimeStats& stats() const { return stats_; }

  /// Machine liveness after the run (all ones without injected faults).
  const std::vector<uint8_t>& alive() const { return alive_; }

  /// Per-process run-report JSON collected over the control plane (empty
  /// string for processes that died before finalize).
  const std::vector<std::string>& worker_reports() const {
    return worker_reports_;
  }

  /// The merged report's "cluster" block: coordinator-clock round timing,
  /// offset-corrected per-link latency samples, the per-superstep critical
  /// path, and the online straggler count. Null before Run.
  const obs::JsonValue& cluster_report() const { return cluster_report_; }

 private:
  Status Validate() const {
    if (graph_ == nullptr || placement_ == nullptr || topology_ == nullptr) {
      return Status::InvalidArgument("executor inputs must be non-null");
    }
    if (placement_->num_partitions() != graph_->num_partitions()) {
      return Status::InvalidArgument(
          "placement partition count does not match graph");
    }
    if (config_.iterations < 1) {
      return Status::InvalidArgument("iterations must be >= 1");
    }
    for (PartitionId p = 0; p < placement_->num_partitions(); ++p) {
      if (placement_->primary(p) >= topology_->num_machines()) {
        return Status::InvalidArgument("placement machine out of range");
      }
    }
    return Status::OK();
  }

  PlacementMsg BuildPlacementMsg(uint32_t num_machines) const {
    PlacementMsg msg;
    msg.num_machines = num_machines;
    msg.num_partitions = placement_->num_partitions();
    msg.replication = kReplicationFactor;
    msg.fault_tolerant = (!options_.faults.empty() ||
                          options_.sigterm_machine != kInvalidMachine)
                             ? 1
                             : 0;
    msg.replicas.reserve(static_cast<size_t>(msg.num_partitions) *
                         kReplicationFactor);
    for (PartitionId p = 0; p < msg.num_partitions; ++p) {
      for (uint32_t r = 0; r < kReplicationFactor; ++r) {
        msg.replicas.push_back(placement_->replicas[p][r]);
      }
    }
    msg.faults = options_.faults;
    msg.heartbeat_period_ms = options_.heartbeat_period_ms;
    msg.clock_sync_pings = options_.clock_sync_pings;
    msg.stall_proc = options_.stall_proc;
    msg.stall_iteration = options_.stall_iteration;
    msg.stall_ms = options_.stall_ms;
    return msg;
  }

  Status Assemble(const CoordinatorOutcome& outcome, uint32_t num_processes,
                  uint32_t num_machines) {
    // Baseline, then overlay each partition's highest-version final state.
    const Graph& g = graph_->encoded_graph();
    states_.clear();
    states_.reserve(g.num_vertices());
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      states_.push_back(app_.InitState(v, g.OutNeighbors(v)));
    }
    std::vector<int32_t> best(graph_->num_partitions(), -1);
    for (const FinalStateMsg& msg : outcome.states) {
      if (msg.partition >= best.size() || msg.version <= best[msg.partition]) {
        continue;
      }
      const size_t expect =
          static_cast<size_t>(msg.count) * sizeof(VertexState);
      if (msg.states.size() != expect ||
          static_cast<size_t>(msg.begin) + msg.count > states_.size()) {
        return Status::Corruption("malformed final state for partition " +
                                  std::to_string(msg.partition));
      }
      if (msg.count > 0) {
        std::memcpy(&states_[msg.begin], msg.states.data(), expect);
      }
      best[msg.partition] = msg.version;
    }
    for (PartitionId p = 0; p < best.size(); ++p) {
      if (best[p] < 0) {
        return Status::Internal("no final state received for partition " +
                                std::to_string(p));
      }
    }

    virtual_outputs_.clear();
    std::map<uint64_t, int32_t> virtual_version;
    constexpr size_t kEntry =
        sizeof(uint64_t) + sizeof(int32_t) + sizeof(VirtualOutput);
    for (const FinalVirtualMsg& msg : outcome.virtuals) {
      if (msg.entry_bytes != sizeof(VirtualOutput) ||
          msg.entries.size() != static_cast<size_t>(msg.count) * kEntry) {
        return Status::Corruption("malformed final virtual outputs");
      }
      const uint8_t* base = msg.entries.data();
      for (uint32_t i = 0; i < msg.count; ++i) {
        const uint64_t id = runtime::ReadPod<uint64_t>(base + i * kEntry);
        const int32_t version =
            runtime::ReadPod<int32_t>(base + i * kEntry + sizeof(uint64_t));
        const VirtualOutput output = runtime::ReadPod<VirtualOutput>(
            base + i * kEntry + sizeof(uint64_t) + sizeof(int32_t));
        auto it = virtual_version.find(id);
        if (it == virtual_version.end() || version > it->second) {
          virtual_version[id] = version;
          virtual_outputs_[id] = output;
        }
      }
    }

    stats_ = runtime::RuntimeStats{};
    stats_.num_workers = num_processes;
    stats_.num_machines = num_machines;
    stats_.num_processes = num_processes;
    stats_.iterations = config_.iterations;
    const WorkerStatsMsg& totals = outcome.totals;
    stats_.tasks_executed = totals.tasks_executed;
    stats_.tasks_reexecuted = totals.tasks_reexecuted;
    stats_.machine_failures = outcome.machine_failures;
    stats_.messages_sent = totals.messages_sent;
    stats_.buffers_sent = totals.buffers_sent;
    stats_.wire_batches_sent = totals.wire_batches_sent;
    stats_.wire_segments_sent = totals.wire_segments_sent;
    stats_.wire_payload_bytes = totals.wire_payload_bytes;
    stats_.wire_messages_combined = totals.wire_messages_combined;
    stats_.wire_flush_size = totals.wire_flush_size;
    stats_.wire_flush_deadline = totals.wire_flush_deadline;
    stats_.wire_flush_stage_end = totals.wire_flush_stage_end;
    stats_.pool_buffers_acquired = totals.pool_buffers_acquired;
    stats_.pool_buffers_reused = totals.pool_buffers_reused;
    stats_.refetch_bytes = totals.refetch_bytes;
    stats_.tcp_bytes_sent = totals.tcp_bytes_sent;
    stats_.tcp_frames_sent = totals.tcp_frames_sent;
    stats_.resend_bytes = totals.resend_bytes;
    stats_.replication_bytes = totals.replication_bytes;
    stats_.combine_messages_scattered = totals.combine_messages_scattered;
    stats_.frontier_vertices_skipped = totals.frontier_vertices_skipped;
    stats_.combine_scatter_seconds =
        static_cast<double>(totals.combine_scatter_micros) / 1e6;
    stats_.barrier_generations = outcome.rounds;
    stats_.link_bytes = totals.link_bytes;
    stats_.peak_rss_bytes = outcome.peak_worker_rss_bytes;
    stats_.rss_bytes = obs::ReadMemoryUsage().rss_bytes;

    alive_ = outcome.alive;
    worker_reports_ = outcome.worker_reports;
    BuildClusterView(outcome, num_processes);
    return Status::OK();
  }

  /// Folds the per-worker link records into offset-corrected cluster link
  /// samples, chains the per-superstep critical path, and serializes the
  /// "cluster" block (also written to dist_cluster.report.json when an
  /// artifact dir is configured).
  void BuildClusterView(const CoordinatorOutcome& outcome,
                        uint32_t num_processes) {
    std::vector<runtime::ClusterLinkSample> links;
    const size_t procs =
        std::min<size_t>(outcome.worker_stats.size(), num_processes);
    for (uint32_t to = 0; to < procs; ++to) {
      const WorkerStatsMsg& stats = outcome.worker_stats[to];
      for (const RoundLinkStat& raw : stats.round_link_stats) {
        runtime::ClusterLinkSample sample;
        sample.seq = raw.seq;
        sample.from_proc = raw.from_proc;
        sample.to_proc = to;
        sample.frames = raw.frames;
        sample.bytes = raw.bytes;
        // The receiver recorded (receiver clock - sender clock); adding its
        // handshake-estimated offset to the sender — (sender clock -
        // receiver clock) — recovers the true transit time.
        double offset = 0.0;
        if (stats.clock_synced != 0 &&
            raw.from_proc < stats.clock_offset_us.size()) {
          offset = static_cast<double>(stats.clock_offset_us[raw.from_proc]);
        }
        if (raw.frames > 0) {
          sample.mean_latency_us =
              static_cast<double>(raw.latency_sum_us) / raw.frames + offset;
        }
        sample.max_latency_us =
            static_cast<double>(raw.latency_max_us) + offset;
        links.push_back(sample);
      }
    }
    cluster_report_ = runtime::ClusterTimelineToJson(
        outcome.round_records, links, outcome.stragglers_flagged);
    if (!options_.artifact_dir.empty()) {
      obs::JsonValue doc = obs::JsonValue::MakeObject();
      doc.Set("name", obs::JsonValue("surfer_dist_cluster"));
      doc.Set("schema_version", obs::kRunReportSchemaVersion);
      doc.Set("cluster", cluster_report_);
      (void)obs::WriteRunReport(
          options_.artifact_dir + "/dist_cluster.report.json", doc);
    }
  }

  const PartitionedGraph* graph_;
  const ReplicatedPlacement* placement_;
  const Topology* topology_;
  App app_;
  PropagationConfig config_;
  DistributedOptions options_;

  std::vector<VertexState> states_;
  std::map<uint64_t, VirtualOutput> virtual_outputs_;
  runtime::RuntimeStats stats_;
  std::vector<uint8_t> alive_;
  std::vector<std::string> worker_reports_;
  obs::JsonValue cluster_report_;
};

}  // namespace net
}  // namespace surfer

#endif  // SURFER_NET_DISTRIBUTED_H_
