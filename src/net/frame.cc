#include "net/frame.h"

#include <chrono>
#include <cstdio>

namespace surfer {
namespace net {

using runtime::AppendPod;
using runtime::WireBatch;

uint64_t NowUnixUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

Status WriteFrame(Socket& sock, FrameType type, const void* payload,
                  size_t payload_bytes) {
  FrameHeader header;
  header.type = static_cast<uint16_t>(type);
  header.payload_bytes = payload_bytes;
  header.link_seq = sock.NextFrameSeq();
  header.send_unix_us = NowUnixUs();
  SURFER_RETURN_IF_ERROR(sock.WriteFull(&header, sizeof(header)));
  if (payload_bytes > 0) {
    SURFER_RETURN_IF_ERROR(sock.WriteFull(payload, payload_bytes));
  }
  return Status::OK();
}

Result<Frame> ReadFrame(Socket& sock, const std::atomic<bool>* interrupt) {
  FrameHeader header;
  SURFER_RETURN_IF_ERROR(sock.ReadFull(&header, sizeof(header), interrupt));
  if (header.magic != kFrameMagic) {
    return Status::Corruption("bad frame magic 0x" + [&] {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%08x", header.magic);
      return std::string(buf);
    }());
  }
  if (header.version != kFrameVersion) {
    return Status::NotSupported(
        "frame version mismatch: peer speaks v" +
        std::to_string(header.version) + ", this build speaks v" +
        std::to_string(kFrameVersion));
  }
  if (header.payload_bytes > kMaxFramePayloadBytes) {
    return Status::Corruption("frame payload length " +
                              std::to_string(header.payload_bytes) +
                              " exceeds limit");
  }
  Frame frame;
  frame.type = static_cast<FrameType>(header.type);
  frame.link_seq = header.link_seq;
  frame.send_unix_us = header.send_unix_us;
  frame.payload.resize(header.payload_bytes);
  if (header.payload_bytes > 0) {
    // A torn payload (peer died mid-frame) surfaces as kCorruption from
    // ReadFull's mid-buffer EOF path.
    SURFER_RETURN_IF_ERROR(
        sock.ReadFull(frame.payload.data(), frame.payload.size(), interrupt));
  }
  frame.recv_unix_us = NowUnixUs();
  return frame;
}

std::vector<uint8_t> EncodeWireBatch(const WireBatch& batch) {
  std::vector<uint8_t> out;
  out.reserve(32 + batch.payload.size());
  AppendPod(out, static_cast<uint32_t>(batch.src_machine));
  AppendPod(out, static_cast<uint32_t>(batch.dst_machine));
  AppendPod(out, batch.num_segments);
  AppendPod(out, batch.num_messages);
  AppendPod(out, batch.priced_bytes);
  AppendPod(out, static_cast<uint64_t>(batch.payload.size()));
  out.insert(out.end(), batch.payload.begin(), batch.payload.end());
  return out;
}

Result<WireBatch> DecodeWireBatch(const std::vector<uint8_t>& frame) {
  PayloadReader reader(frame);
  WireBatch batch;
  uint32_t src = 0;
  uint32_t dst = 0;
  uint64_t payload_bytes = 0;
  SURFER_RETURN_IF_ERROR(reader.Read(&src));
  SURFER_RETURN_IF_ERROR(reader.Read(&dst));
  SURFER_RETURN_IF_ERROR(reader.Read(&batch.num_segments));
  SURFER_RETURN_IF_ERROR(reader.Read(&batch.num_messages));
  SURFER_RETURN_IF_ERROR(reader.Read(&batch.priced_bytes));
  SURFER_RETURN_IF_ERROR(reader.Read(&payload_bytes));
  batch.src_machine = src;
  batch.dst_machine = dst;
  if (payload_bytes != reader.remaining()) {
    return Status::Corruption(
        "wire batch length mismatch: header says " +
        std::to_string(payload_bytes) + " payload bytes, frame carries " +
        std::to_string(reader.remaining()));
  }
  batch.payload.resize(payload_bytes);
  SURFER_RETURN_IF_ERROR(reader.ReadBytes(batch.payload.data(),
                                          payload_bytes));
  return batch;
}

}  // namespace net
}  // namespace surfer
