#ifndef SURFER_NET_FRAME_H_
#define SURFER_NET_FRAME_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/result.h"
#include "net/socket.h"
#include "runtime/wire_batch.h"

namespace surfer {
namespace net {

/// Frame magic: "SRFR" little-endian. The first four bytes of every frame on
/// every surfer connection, so a stray connection (or a desynchronized
/// stream) fails at decode time instead of being misparsed.
inline constexpr uint32_t kFrameMagic = 0x52465253u;

/// Version of the frame layout *and* of the WireBatch encoding it carries.
/// Bumped whenever WireSegmentHeader, the record encodings, or the frame
/// header itself change shape; both ends must agree exactly.
/// v2: header grew link_seq + send_unix_us stamps (causal tracing), and the
/// heartbeat/clock-sync frame types appeared.
inline constexpr uint16_t kFrameVersion = 2;

/// Upper bound on a single frame payload. Far above anything the stager
/// seals (64 KiB default cap) but low enough that a corrupt length field
/// cannot drive a multi-gigabyte allocation.
inline constexpr uint64_t kMaxFramePayloadBytes = 1ull << 30;

/// Every message on the control plane (coordinator <-> worker) and the data
/// mesh (worker <-> worker) is one typed frame.
enum class FrameType : uint16_t {
  // Control plane.
  kHello = 1,        ///< worker -> coordinator: process index + mesh port
  kPeers = 2,        ///< coordinator -> workers: mesh port of every process
  kPlacement = 3,    ///< coordinator -> workers: replica table + fault plans
  kReady = 4,        ///< worker -> coordinator: mesh fully connected
  kRound = 5,        ///< coordinator -> workers: one BSP round assignment
  kTaskDone = 6,     ///< worker -> coordinator: one task completed
  kRoundDone = 7,    ///< worker -> coordinator: round barrier reached
  kFinalize = 8,     ///< coordinator -> workers: send results
  kWorkerStats = 9,  ///< worker -> coordinator: merged counters + link matrix
  kFinalState = 10,  ///< worker -> coordinator: one partition's vertex states
  kFinalVirtual = 11,  ///< worker -> coordinator: virtual vertex outputs
  kWorkerReport = 12,  ///< worker -> coordinator: run-report JSON text
  kFinalDone = 13,   ///< worker -> coordinator: result stream complete
  kShutdown = 14,    ///< coordinator -> workers: exit now
  kHeartbeat = 15,   ///< worker -> coordinator: periodic liveness + load
  // Data mesh.
  kMeshHello = 20,   ///< connecting worker identifies its process index
  kData = 21,        ///< one serialized WireBatch
  kStateUpdate = 22,  ///< post-combine state replication to replica holders
  kEos = 23,         ///< sender finished sending for round `seq`
  /// Receiver-side acknowledgement of one kData/kStateUpdate frame
  /// (fault-tolerant runs only). A dying process may not close its sockets
  /// until every frame it sent has been *consumed* by the peer's receiver
  /// thread: a TCP close with unread inbound data degenerates to RST, which
  /// can discard in-flight bytes — exactly the completed-task output that
  /// Appendix B requires to survive the crash.
  kDataAck = 24,
  // Clock-sync session during the mesh rendezvous (NTP-style): the client
  // sends kPing, the server echoes the ping's send/recv stamps in kPong,
  // and the client closes the session with its kClockOffset estimate.
  kPing = 25,
  kPong = 26,
  kClockOffset = 27,
};

/// Microseconds since the Unix epoch; the clock every frame stamp, clock
/// offset, and trace anchor is expressed in.
uint64_t NowUnixUs();

/// The 32-byte length-prefixed frame header. `payload_bytes` bytes follow.
/// `link_seq` is the per-link monotone frame counter and `send_unix_us` the
/// sender's wall clock at write time; together with the receive timestamp
/// recorded by ReadFrame they give every frame a causal identity without
/// touching the payload encodings.
struct FrameHeader {
  uint32_t magic = kFrameMagic;
  uint16_t version = kFrameVersion;
  uint16_t type = 0;
  uint64_t payload_bytes = 0;
  uint64_t link_seq = 0;
  uint64_t send_unix_us = 0;
};
static_assert(std::is_trivially_copyable_v<FrameHeader>);
static_assert(sizeof(FrameHeader) == 32);

struct Frame {
  FrameType type = FrameType::kShutdown;
  std::vector<uint8_t> payload;
  uint64_t link_seq = 0;      ///< sender's per-link frame counter
  uint64_t send_unix_us = 0;  ///< sender's clock at WriteFrame
  uint64_t recv_unix_us = 0;  ///< receiver's clock when ReadFrame decoded it
};

/// Writes one frame (header + payload) to the socket.
Status WriteFrame(Socket& sock, FrameType type,
                  const void* payload, size_t payload_bytes);
inline Status WriteFrame(Socket& sock, FrameType type,
                         const std::vector<uint8_t>& payload) {
  return WriteFrame(sock, type, payload.data(), payload.size());
}
inline Status WriteFrame(Socket& sock, FrameType type) {
  return WriteFrame(sock, type, nullptr, 0);
}

/// Reads one frame. Distinguishes the failure modes a process boundary
/// introduces: a clean EOF between frames returns kUnavailable (orderly peer
/// exit); EOF inside the header or payload returns kCorruption ("torn
/// frame"); a magic or version mismatch returns kCorruption/kNotSupported
/// before any payload is consumed. `interrupt` follows Socket::ReadFull
/// semantics (SIGTERM escape hatch for blocking control reads).
Result<Frame> ReadFrame(Socket& sock,
                        const std::atomic<bool>* interrupt = nullptr);

/// Serializes a WireBatch into a frame payload:
/// (src, dst, num_segments : u32) (num_messages, priced_bytes,
/// payload_bytes : u64) followed by the raw segment payload.
std::vector<uint8_t> EncodeWireBatch(const runtime::WireBatch& batch);

/// Decodes an EncodeWireBatch payload, validating the inner length field
/// against the actual frame size.
Result<runtime::WireBatch> DecodeWireBatch(const std::vector<uint8_t>& frame);

/// Bounds-checked sequential reader for frame payloads (control messages).
class PayloadReader {
 public:
  explicit PayloadReader(const std::vector<uint8_t>& data) : data_(data) {}

  template <typename T>
  Status Read(T* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (offset_ + sizeof(T) > data_.size()) {
      return Status::Corruption("frame payload underrun");
    }
    std::memcpy(out, data_.data() + offset_, sizeof(T));
    offset_ += sizeof(T);
    return Status::OK();
  }

  Status ReadBytes(void* out, size_t len) {
    if (offset_ + len > data_.size()) {
      return Status::Corruption("frame payload underrun");
    }
    std::memcpy(out, data_.data() + offset_, len);
    offset_ += len;
    return Status::OK();
  }

  size_t remaining() const { return data_.size() - offset_; }
  size_t offset() const { return offset_; }

 private:
  const std::vector<uint8_t>& data_;
  size_t offset_ = 0;
};

}  // namespace net
}  // namespace surfer

#endif  // SURFER_NET_FRAME_H_
