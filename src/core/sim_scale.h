#ifndef SURFER_CORE_SIM_SCALE_H_
#define SURFER_CORE_SIM_SCALE_H_

#include "cluster/topology.h"
#include "common/logging.h"
#include "engine/job_simulation.h"

namespace surfer {

/// The paper's experiments move hundreds of gigabytes; this repository's
/// graphs are megabytes. To keep the *regimes* comparable — byte-volume
/// costs dominating fixed task overheads, exactly as on the real cluster —
/// experiments scale the simulated hardware down by the same factor the data
/// was scaled down. A graph 1000x smaller on hardware 1000x slower yields
/// the same stage-time structure (and identical *ratios*, which are what the
/// paper reports).
inline constexpr double kDefaultHardwareScale = 2000.0;

/// Divides a machine's NIC and disk bandwidth by `factor`.
inline Machine ScaleMachine(Machine machine, double factor) {
  machine.nic_bytes_per_sec /= factor;
  machine.disk_bytes_per_sec /= factor;
  return machine;
}

/// Returns `base` with its machine template scaled down by `factor`.
inline TopologyOptions ScaleTopologyOptions(TopologyOptions base,
                                            double factor) {
  base.machine_template = ScaleMachine(base.machine_template, factor);
  return base;
}

/// Returns `base` with CPU throughput scaled down. CPU scales by a quarter
/// of the I/O factor: the paper's workloads are I/O-bound (compute overlaps
/// with disk and network), so compute must stay a minor term in scaled task
/// times just as it is on the real cluster.
inline JobSimulationOptions ScaleSimOptions(JobSimulationOptions base,
                                            double factor) {
  base.cost.cpu_bytes_per_sec /= std::max(1.0, factor / 4.0);
  return base;
}

/// Convenience: a paper-regime topology of the given kind.
inline Topology MakeScaledT1(uint32_t machines,
                             double factor = kDefaultHardwareScale) {
  TopologyOptions opt;
  opt.kind = TopologyKind::kT1;
  opt.num_machines = machines;
  opt = ScaleTopologyOptions(opt, factor);
  auto result = Topology::Make(opt);
  SURFER_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

inline Topology MakeScaledT2(uint32_t machines, uint32_t pods,
                             uint32_t levels,
                             double factor = kDefaultHardwareScale,
                             double second_level_factor = 16.0,
                             double top_level_factor = 32.0) {
  TopologyOptions opt;
  opt.kind = TopologyKind::kT2;
  opt.num_machines = machines;
  opt.num_pods = pods;
  opt.num_levels = levels;
  opt.second_level_factor = second_level_factor;
  opt.top_level_factor = top_level_factor;
  opt = ScaleTopologyOptions(opt, factor);
  auto result = Topology::Make(opt);
  SURFER_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

inline Topology MakeScaledT3(uint32_t machines,
                             double factor = kDefaultHardwareScale,
                             double low_ratio = 0.5, uint64_t seed = 7) {
  TopologyOptions opt;
  opt.kind = TopologyKind::kT3;
  opt.num_machines = machines;
  opt.low_bandwidth_ratio = low_ratio;
  opt.seed = seed;
  opt = ScaleTopologyOptions(opt, factor);
  auto result = Topology::Make(opt);
  SURFER_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

/// Paper-regime simulation options (scaled CPU, small fixed overhead).
inline JobSimulationOptions MakeScaledSimOptions(
    double factor = kDefaultHardwareScale) {
  JobSimulationOptions options;
  options.cost.task_overhead_s = 0.05;
  return ScaleSimOptions(options, factor);
}

}  // namespace surfer

#endif  // SURFER_CORE_SIM_SCALE_H_
