#ifndef SURFER_CORE_PIPELINE_H_
#define SURFER_CORE_PIPELINE_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "apps/benchmark_suite.h"
#include "common/result.h"
#include "core/engine.h"
#include "core/surfer.h"
#include "engine/job_simulation.h"
#include "mapreduce/runner.h"

namespace surfer {

/// A small composition layer over the two primitives — the beginnings of the
/// "high-level language on top of MapReduce and propagation" the paper lists
/// as ongoing work (Appendix B). A JobPipeline chains named steps that share
/// one simulated cluster execution: later steps see the same machine state
/// (including failures), and the report attributes time and I/O per step.
///
///   JobPipeline pipeline(&engine, OptimizationLevel::kO4);
///   pipeline.AddPropagation<NetworkRankingApp>("rank", app, config);
///   pipeline.Add("reverse", [](JobContext& ctx) { ... });
///   auto report = pipeline.Run();
class JobPipeline {
 public:
  /// Execution context handed to each step.
  struct JobContext {
    const SurferEngine* engine = nullptr;
    BenchmarkSetup setup;
    JobSimulation* sim = nullptr;
  };
  using StepFn = std::function<Status(JobContext&)>;

  /// Per-step slice of the run report.
  struct StepReport {
    std::string name;
    double response_time_s = 0.0;
    double total_machine_time_s = 0.0;
    double network_bytes = 0.0;
    double disk_bytes = 0.0;
  };
  struct Report {
    std::vector<StepReport> steps;
    RunMetrics totals;

    std::string ToString() const;
  };

  JobPipeline(const SurferEngine* engine, OptimizationLevel level)
      : engine_(engine), level_(level) {
    setup_ = engine->MakeSetup(level);
  }

  /// Overrides the simulation options (hardware scale, heartbeats, ...).
  void set_sim_options(JobSimulationOptions options) {
    setup_.sim_options = options;
  }
  /// Schedules a machine failure for the shared execution.
  void InjectFault(const FaultPlan& fault) { faults_.push_back(fault); }

  /// Appends a custom step.
  void Add(std::string name, StepFn step) {
    steps_.emplace_back(std::move(name), std::move(step));
  }

  /// Appends a propagation job. `on_done` (optional) receives the finished
  /// RunAppResult to extract states/outputs.
  template <typename App>
  void AddPropagation(
      std::string name, App app, PropagationConfig config,
      std::function<void(const RunAppResult<App>&)> on_done = nullptr) {
    PropagationConfig level_config = PropagationConfig::ForLevel(level_);
    config.local_propagation = level_config.local_propagation;
    config.local_combination = level_config.local_combination;
    Add(std::move(name),
        [app = std::move(app), config, on_done](JobContext& ctx) -> Status {
          EngineOptions options;
          options.propagation = config;
          SURFER_ASSIGN_OR_RETURN(
              Engine engine,
              Engine::Open(ctx.setup.graph, ctx.setup.placement,
                           ctx.setup.topology, options));
          SURFER_ASSIGN_OR_RETURN(RunAppResult<App> result,
                                  engine.Run(app, ctx.sim));
          if (on_done) {
            on_done(result);
          }
          return Status::OK();
        });
  }

  /// Appends a MapReduce job; `on_done` receives the finished runner.
  template <typename App>
  void AddMapReduce(
      std::string name, App app,
      std::function<void(const MapReduceRunner<App>&)> on_done = nullptr) {
    Add(std::move(name),
        [app = std::move(app), on_done](JobContext& ctx) -> Status {
          MapReduceRunner<App> runner(ctx.setup.graph, ctx.setup.placement,
                                      ctx.setup.topology, app);
          SURFER_RETURN_IF_ERROR(runner.RunWith(ctx.sim));
          if (on_done) {
            on_done(runner);
          }
          return Status::OK();
        });
  }

  /// Runs every step in order on one shared simulation.
  Result<Report> Run();

  size_t num_steps() const { return steps_.size(); }

 private:
  const SurferEngine* engine_;
  OptimizationLevel level_;
  BenchmarkSetup setup_;
  std::vector<std::pair<std::string, StepFn>> steps_;
  std::vector<FaultPlan> faults_;
};

}  // namespace surfer

#endif  // SURFER_CORE_PIPELINE_H_
