#include "core/surfer.h"

#include <algorithm>

namespace surfer {

Result<std::unique_ptr<SurferEngine>> SurferEngine::Build(
    const Graph& graph, Topology topology, const SurferOptions& options) {
  if (graph.num_vertices() == 0) {
    return Status::InvalidArgument("empty graph");
  }
  std::unique_ptr<SurferEngine> engine(new SurferEngine(std::move(topology)));

  uint32_t num_partitions = options.num_partitions;
  if (num_partitions == 0) {
    num_partitions = std::max(
        options.min_partitions,
        ChooseNumPartitions(graph.StoredBytes(),
                            options.partition_memory_budget));
  }
  if ((num_partitions & (num_partitions - 1)) != 0) {
    return Status::InvalidArgument("num_partitions must be a power of two");
  }
  num_partitions =
      std::min<uint32_t>(num_partitions,
                         std::bit_floor(graph.num_vertices()));

  RecursivePartitionerOptions part_options;
  part_options.num_partitions = num_partitions;
  part_options.bisection = options.bisection;
  part_options.bisection.seed = options.seed;
  SURFER_ASSIGN_OR_RETURN(engine->partition_result_,
                          RecursivePartition(graph, part_options));

  SURFER_ASSIGN_OR_RETURN(
      PartitionedGraph partitioned,
      PartitionedGraph::Create(graph, engine->partition_result_.partitioning));
  engine->partitioned_ =
      std::make_unique<PartitionedGraph>(std::move(partitioned));
  engine->quality_ =
      ComputeQuality(graph, engine->partition_result_.partitioning);

  SURFER_ASSIGN_OR_RETURN(
      engine->ba_mapping_,
      ComputeBandwidthAwarePlacement(engine->topology_,
                                     engine->partition_result_.sketch));
  SURFER_ASSIGN_OR_RETURN(
      engine->ba_placement_,
      MakeReplicatedPlacement(engine->ba_mapping_.partition_to_machine,
                              engine->topology_, options.seed));
  SURFER_ASSIGN_OR_RETURN(
      engine->random_placement_,
      MakeReplicatedPlacement(
          RandomPlacement(num_partitions, engine->topology_, options.seed),
          engine->topology_, options.seed + 1));
  return engine;
}

BenchmarkSetup SurferEngine::MakeSetup(OptimizationLevel level) const {
  return MakeSetup(UsesBandwidthAwareLayout(level));
}

BenchmarkSetup SurferEngine::MakeSetup(bool bandwidth_aware_layout) const {
  BenchmarkSetup setup;
  setup.graph = partitioned_.get();
  setup.placement =
      bandwidth_aware_layout ? &ba_placement_ : &random_placement_;
  setup.topology = &topology_;
  return setup;
}

}  // namespace surfer
