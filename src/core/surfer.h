#ifndef SURFER_CORE_SURFER_H_
#define SURFER_CORE_SURFER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "apps/benchmark_suite.h"
#include "cluster/topology.h"
#include "common/result.h"
#include "core/engine.h"
#include "graph/graph.h"
#include "partition/machine_graph.h"
#include "partition/partitioning.h"
#include "partition/recursive_partitioner.h"
#include "propagation/config.h"
#include "storage/partitioned_graph.h"
#include "storage/replication.h"

namespace surfer {

/// Top-level configuration of a Surfer deployment over one data graph and
/// one cluster.
struct SurferOptions {
  /// Number of partitions; 0 derives it from the paper's rule
  /// P = 2^ceil(log2(||G|| / partition_memory_budget)) (Section 4.2).
  uint32_t num_partitions = 0;
  /// Memory budget per partition for the derivation above. Because the
  /// simulated graphs are far smaller than 100 GB, this defaults to a value
  /// that yields a realistic partition count rather than 8 GB.
  uint64_t partition_memory_budget = 1 << 20;
  /// At least this many partitions regardless of the memory rule (ensures a
  /// meaningful distributed layout on small inputs).
  uint32_t min_partitions = 2;
  BisectionOptions bisection;
  uint64_t seed = 2010;
};

/// The Surfer engine facade: partitions a data graph (multilevel recursive
/// bisection, Section 4), re-encodes vertex IDs (Appendix B), computes both
/// storage layouts — bandwidth-aware (Algorithm 4) and the ParMetis-like
/// random baseline — replicates partitions (Section 3), and hands out ready
/// BenchmarkSetups for running propagation or MapReduce jobs.
class SurferEngine {
 public:
  /// Builds the engine: partitions `graph` and places it on `topology`.
  static Result<std::unique_ptr<SurferEngine>> Build(
      const Graph& graph, Topology topology, const SurferOptions& options);

  const Topology& topology() const { return topology_; }
  const PartitionedGraph& partitioned_graph() const { return *partitioned_; }
  const Partitioning& partitioning() const { return partition_result_.partitioning; }
  const PartitionSketch& sketch() const { return partition_result_.sketch; }
  uint32_t num_partitions() const { return partitioned_->num_partitions(); }

  /// The bandwidth-aware placement (O2/O4 layouts).
  const ReplicatedPlacement& bandwidth_aware_placement() const {
    return ba_placement_;
  }
  /// The ParMetis-like random placement (O1/O3 layouts).
  const ReplicatedPlacement& random_placement() const {
    return random_placement_;
  }
  /// The machine sets the bandwidth-aware recursion assigned per sketch
  /// node (used by the partitioning-time model and tests).
  const BandwidthAwarePlacement& bandwidth_aware_mapping() const {
    return ba_mapping_;
  }

  /// Partitioning quality (ier etc., Table 5).
  const PartitionQuality& quality() const { return quality_; }

  /// A ready-to-run setup for the given optimization level's storage layout.
  BenchmarkSetup MakeSetup(OptimizationLevel level) const;
  /// A setup with an explicit layout choice.
  BenchmarkSetup MakeSetup(bool bandwidth_aware_layout) const;

 private:
  SurferEngine(Topology topology) : topology_(std::move(topology)) {}

  Topology topology_;
  RecursivePartitionResult partition_result_;
  std::unique_ptr<PartitionedGraph> partitioned_;
  BandwidthAwarePlacement ba_mapping_;
  ReplicatedPlacement ba_placement_;
  ReplicatedPlacement random_placement_;
  PartitionQuality quality_;
};

}  // namespace surfer

#endif  // SURFER_CORE_SURFER_H_
