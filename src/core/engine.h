#ifndef SURFER_CORE_ENGINE_H_
#define SURFER_CORE_ENGINE_H_

#include <cstdlib>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <typeinfo>
#include <utility>
#include <vector>

#if defined(__GNUG__)
#include <cxxabi.h>
#endif

#include "apps/benchmark_suite.h"
#include "cluster/metrics.h"
#include "cluster/topology.h"
#include "common/result.h"
#include "engine/job_simulation.h"
#include "graph/types.h"
#include "net/distributed.h"
#include "obs/json.h"
#include "obs/telemetry.h"
#include "propagation/app_traits.h"
#include "propagation/config.h"
#include "propagation/runner.h"
#include "runtime/executor.h"
#include "runtime/stats.h"
#include "storage/partitioned_graph.h"
#include "storage/replication.h"

namespace surfer {

namespace serve {
class GraphService;
struct ServeOptions;
}  // namespace serve

/// Which execution engine a session dispatches to. All engines compute
/// bit-identical vertex states; they differ in what they *measure*.
enum class EngineKind {
  /// The sequential PropagationRunner: exact analytic cost model over a
  /// simulated cluster (response time, disk/network bytes, RunMetrics).
  kAnalytic,
  /// The multithreaded RuntimeExecutor: real concurrent execution through
  /// the wire-batch message plane (wall-clock RuntimeStats, channel
  /// backpressure, fault recovery at task granularity).
  kConcurrent,
  /// The multi-process DistributedExecutor: one OS process per machine
  /// group, full-mesh TCP transport carrying the serialized wire batches,
  /// BSP barrier over control frames, fault plans realized as real process
  /// kills with first-alive-replica recovery.
  kDistributed,
};

/// The enumerator's spelling, for error messages ("kAnalytic", ...).
inline const char* EngineKindName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kAnalytic:
      return "kAnalytic";
    case EngineKind::kConcurrent:
      return "kConcurrent";
    case EngineKind::kDistributed:
      return "kDistributed";
  }
  return "unknown";
}

/// One options struct shared by batch runs (Engine::Run) and the serving
/// plane (Engine::Serve). Engine-specific fields must be left at their
/// defaults for the other engines — Validate() rejects nonsensical
/// combinations instead of silently ignoring them; `propagation` applies to
/// every engine.
struct EngineOptions {
  EngineKind engine = EngineKind::kAnalytic;
  /// Iterations, optimization flags, tracer/metrics hooks (all engines).
  PropagationConfig propagation;
  /// Simulated-hardware parameters (analytic engine only).
  JobSimulationOptions sim;
  /// Machine failures scheduled into the simulation (analytic engine only).
  std::vector<FaultPlan> sim_faults;
  /// Worker count, channel window, wire-batch knobs, runtime fault plans
  /// (concurrent engine only).
  runtime::RuntimeOptions runtime;
  /// Process count, wire knobs, fault/SIGTERM schedule, artifact directory
  /// (distributed engine only).
  net::DistributedOptions distributed;

  /// Rejects combinations that can only be configuration mistakes: knobs of
  /// an engine that is not selected (an analytic run with a channel window,
  /// simulated fault plans on a real engine, distributed process counts on a
  /// threaded run), zero-sized channel windows, and negative iteration
  /// counts. Engine::Open calls this, so every session — batch or serving —
  /// runs validated options.
  Status Validate() const;
};

/// What a propagation run produces, unified across engines. Engine-specific
/// measurements arrive in the optionals: `metrics` for the analytic cost
/// model, `runtime_stats` for the concurrent/distributed runtimes.
/// Everything else is engine-independent (and bit-identical between them).
template <typename App>
  requires PropagationApp<App>
struct RunAppResult {
  using VertexState = typename App::VertexState;
  using VirtualOutput = typename internal::VirtualOutputOf<App>::type;

  std::vector<VertexState> states;
  std::map<uint64_t, VirtualOutput> virtual_outputs;

  /// Message-routing counters (analytic engine only; the runtime reports
  /// its own accounting through `runtime_stats`).
  std::optional<PropagationCounters> counters;
  /// Simulated cost-model metrics (analytic engine).
  std::optional<RunMetrics> metrics;
  /// Measured execution statistics (concurrent engine).
  std::optional<runtime::RuntimeStats> runtime_stats;
  /// Flight-recorder time series, pre-serialized as the run report's
  /// schema-v3 "telemetry" block (concurrent engine with
  /// options.runtime.telemetry.enabled only).
  std::optional<obs::JsonValue> telemetry;
  /// The merged report's "cluster" block (distributed engine): round
  /// timing, offset-corrected per-link latency, the cluster-wide
  /// per-superstep critical path, and the online straggler count.
  std::optional<obs::JsonValue> cluster;

  /// Row-major M x M per-link network bytes, diagonal zero. Analytic runs
  /// report the priced model bytes; concurrent runs report measured wire
  /// bytes. The two reconcile exactly (tests pin this).
  std::vector<double> link_network_bytes;

  /// State of a vertex addressed by its *original* (pre-encoding) ID.
  const VertexState& StateOfOriginal(VertexId original) const {
    return states[graph->encoding().ToEncoded(original)];
  }

  const PartitionedGraph* graph = nullptr;
};

namespace internal {

/// Human-readable name of an app type for diagnostics
/// ("surfer::ReverseLinkGraphApp" instead of the mangled typeid string).
inline std::string DemangledTypeName(const std::type_info& info) {
#if defined(__GNUG__)
  int status = 0;
  char* demangled =
      abi::__cxa_demangle(info.name(), nullptr, nullptr, &status);
  if (status == 0 && demangled != nullptr) {
    std::string result = demangled;
    std::free(demangled);
    return result;
  }
  std::free(demangled);
#endif
  return info.name();
}

template <typename App>
std::string AppTypeName() {
  return DemangledTypeName(typeid(App));
}

template <typename App>
Result<RunAppResult<App>> RunAnalytic(const PartitionedGraph* graph,
                                      const ReplicatedPlacement* placement,
                                      const Topology* topology, App app,
                                      const EngineOptions& options,
                                      JobSimulation* sim) {
  PropagationRunner<App> runner(graph, placement, topology, std::move(app),
                                options.propagation);
  std::optional<JobSimulation> local_sim;
  if (sim == nullptr) {
    local_sim.emplace(topology, options.sim);
    for (const FaultPlan& fault : options.sim_faults) {
      local_sim->InjectFault(fault);
    }
    sim = &*local_sim;
  }
  SURFER_RETURN_IF_ERROR(runner.RunWith(sim));
  RunAppResult<App> result;
  result.states = runner.states();
  result.virtual_outputs = runner.virtual_outputs();
  result.counters = runner.counters();
  result.metrics = sim->metrics();
  result.link_network_bytes = runner.link_network_bytes();
  result.graph = graph;
  return result;
}

template <typename App>
Result<RunAppResult<App>> RunConcurrent(const PartitionedGraph* graph,
                                        const ReplicatedPlacement* placement,
                                        const Topology* topology, App app,
                                        const EngineOptions& options) {
  if constexpr (runtime::WireSerializableApp<App>) {
    runtime::RuntimeExecutor<App> executor(graph, placement, topology,
                                           std::move(app), options.propagation,
                                           options.runtime);
    SURFER_RETURN_IF_ERROR(executor.Run());
    RunAppResult<App> result;
    result.states = executor.states();
    result.virtual_outputs = executor.virtual_outputs();
    result.runtime_stats = executor.stats();
    if (executor.telemetry() != nullptr && executor.telemetry()->enabled()) {
      result.telemetry = executor.telemetry()->ToJson();
    }
    const uint32_t n = topology->num_machines();
    result.link_network_bytes.assign(static_cast<size_t>(n) * n, 0.0);
    const std::vector<uint64_t>& measured = executor.stats().link_bytes;
    for (uint32_t src = 0; src < n; ++src) {
      for (uint32_t dst = 0; dst < n; ++dst) {
        const size_t i = static_cast<size_t>(src) * n + dst;
        // The runtime's diagonal carries local (non-network) traffic;
        // the unified matrix only reports network bytes.
        if (src != dst && i < measured.size()) {
          result.link_network_bytes[i] = static_cast<double>(measured[i]);
        }
      }
    }
    result.graph = graph;
    return result;
  } else {
    (void)graph;
    (void)placement;
    (void)topology;
    return Status::InvalidArgument(
        "app " + AppTypeName<App>() +
        " is not wire-serializable (its Message is not trivially copyable), "
        "so the concurrent engine (kConcurrent) cannot carry it; engines "
        "supporting this app: kAnalytic");
  }
}

template <typename App>
Result<RunAppResult<App>> RunDistributed(const PartitionedGraph* graph,
                                         const ReplicatedPlacement* placement,
                                         const Topology* topology, App app,
                                         const EngineOptions& options) {
  if constexpr (net::DistributableApp<App>) {
    net::DistributedExecutor<App> executor(graph, placement, topology,
                                           std::move(app), options.propagation,
                                           options.distributed);
    SURFER_RETURN_IF_ERROR(executor.Run());
    RunAppResult<App> result;
    result.states = executor.states();
    result.virtual_outputs = executor.virtual_outputs();
    result.runtime_stats = executor.stats();
    if (executor.cluster_report().is_object()) {
      result.cluster = executor.cluster_report();
    }
    const uint32_t n = topology->num_machines();
    result.link_network_bytes.assign(static_cast<size_t>(n) * n, 0.0);
    const std::vector<uint64_t>& measured = executor.stats().link_bytes;
    for (uint32_t src = 0; src < n; ++src) {
      for (uint32_t dst = 0; dst < n; ++dst) {
        const size_t i = static_cast<size_t>(src) * n + dst;
        // Same convention as the concurrent engine: the diagonal is local
        // traffic, the unified matrix reports network bytes only.
        if (src != dst && i < measured.size()) {
          result.link_network_bytes[i] = static_cast<double>(measured[i]);
        }
      }
    }
    result.graph = graph;
    return result;
  } else {
    (void)graph;
    (void)placement;
    (void)topology;
    // Name the app and exactly which engines *can* run it: everything runs
    // on the analytic engine, and wire-serializable apps whose states are
    // not trivially copyable still run on the threaded runtime.
    std::string supported = "kAnalytic";
    if constexpr (runtime::WireSerializableApp<App>) {
      supported += ", kConcurrent";
    }
    return Status::InvalidArgument(
        "app " + AppTypeName<App>() +
        " cannot run on the distributed engine (kDistributed): it requires a "
        "trivially-copyable Message (wire serialization) and "
        "trivially-copyable vertex states (state replication frames); "
        "engines supporting this app: " + supported);
  }
}

template <typename App>
Result<RunAppResult<App>> Dispatch(const PartitionedGraph* graph,
                                   const ReplicatedPlacement* placement,
                                   const Topology* topology, App app,
                                   const EngineOptions& options) {
  switch (options.engine) {
    case EngineKind::kAnalytic:
      return RunAnalytic(graph, placement, topology, std::move(app), options,
                         /*sim=*/nullptr);
    case EngineKind::kConcurrent:
      return RunConcurrent(graph, placement, topology, std::move(app),
                           options);
    case EngineKind::kDistributed:
      return RunDistributed(graph, placement, topology, std::move(app),
                            options);
  }
  return Status::InvalidArgument("unknown engine kind");
}

}  // namespace internal

inline Status EngineOptions::Validate() const {
  if (propagation.iterations < 0) {
    return Status::InvalidArgument(
        "propagation.iterations must be >= 0 (got " +
        std::to_string(propagation.iterations) + ")");
  }
  if (engine != EngineKind::kAnalytic && !sim_faults.empty()) {
    return Status::InvalidArgument(
        std::string("sim_faults schedule failures into the analytic "
                    "JobSimulation and do nothing on ") +
        EngineKindName(engine) +
        "; use runtime.faults (kConcurrent) or distributed.faults "
        "(kDistributed) instead");
  }
  if (engine == EngineKind::kAnalytic) {
    if (runtime.max_workers != 0) {
      return Status::InvalidArgument(
          "runtime.max_workers is a concurrent-engine knob; the analytic "
          "engine executes sequentially (select EngineKind::kConcurrent)");
    }
    if (runtime.channel_window_bytes !=
        runtime::RuntimeOptions::kDefaultChannelWindowBytes) {
      return Status::InvalidArgument(
          "runtime.channel_window_bytes shapes the concurrent engine's "
          "bounded channels; the analytic engine has no channels (select "
          "EngineKind::kConcurrent)");
    }
    if (runtime.telemetry.enabled) {
      return Status::InvalidArgument(
          "runtime.telemetry samples the concurrent runtime's gauges; the "
          "analytic engine has none (select EngineKind::kConcurrent)");
    }
    if (!runtime.faults.empty()) {
      return Status::InvalidArgument(
          "runtime.faults kill concurrent-runtime workers; schedule analytic "
          "failures through sim_faults instead");
    }
  }
  if (engine == EngineKind::kConcurrent &&
      runtime.channel_window_bytes == 0) {
    return Status::InvalidArgument(
        "runtime.channel_window_bytes must be > 0: a zero admission window "
        "would starve every channel");
  }
  if (engine != EngineKind::kDistributed) {
    if (distributed.max_processes != 0 || !distributed.faults.empty()) {
      return Status::InvalidArgument(
          std::string("distributed.max_processes / distributed.faults "
                      "configure the multi-process engine and do nothing "
                      "on ") +
          EngineKindName(engine) + " (select EngineKind::kDistributed)");
    }
  }
  if (engine == EngineKind::kDistributed && !runtime.faults.empty()) {
    return Status::InvalidArgument(
        "runtime.faults kill threads of the concurrent engine; distributed "
        "fault plans (real process kills) belong in distributed.faults");
  }
  return Status::OK();
}

/// The session front-end for running propagation applications: open the
/// partitioned graph, its placement, the topology, and validated
/// EngineOptions *once*, then run many apps — or start the long-lived
/// query-serving plane — against that session.
///
///   SURFER_ASSIGN_OR_RETURN(Engine engine, Engine::Open(setup, options));
///   SURFER_ASSIGN_OR_RETURN(auto run, engine.Run(NetworkRankingApp(n)));
///   SURFER_ASSIGN_OR_RETURN(auto service, engine.Serve(serve_options));
///
/// The Engine does not own the graph/placement/topology (they typically live
/// in a SurferEngine); it owns only the validated options. The free-function
/// RunApp overloads in core/run_app.h are deprecated shims over this class.
class Engine {
 public:
  /// Opens a session. Fails with InvalidArgument when any pointer is null or
  /// options.Validate() rejects the configuration.
  static Result<Engine> Open(const PartitionedGraph* graph,
                             const ReplicatedPlacement* placement,
                             const Topology* topology,
                             EngineOptions options = {}) {
    if (graph == nullptr || placement == nullptr || topology == nullptr) {
      return Status::InvalidArgument(
          "Engine::Open requires non-null graph, placement, and topology");
    }
    SURFER_RETURN_IF_ERROR(options.Validate());
    return Engine(graph, placement, topology, std::move(options));
  }

  /// Opens a session over a BenchmarkSetup bundle: the setup's sim_options
  /// replace `options.sim` (a setup is a ready-to-run bundle; its simulated
  /// hardware is part of the bundle).
  static Result<Engine> Open(const BenchmarkSetup& setup,
                             EngineOptions options = {}) {
    options.sim = setup.sim_options;
    return Open(setup.graph, setup.placement, setup.topology,
                std::move(options));
  }

  /// Runs one app through the session's engine; see RunAppResult for what
  /// comes back per engine kind.
  template <typename App>
    requires PropagationApp<App>
  Result<RunAppResult<App>> Run(App app) const {
    return internal::Dispatch(graph_, placement_, topology_, std::move(app),
                              options_);
  }

  /// Runs one app on an externally owned simulation (fault-injection
  /// experiments, job composition): metrics accumulate into `sim`, and
  /// `options.sim` / `options.sim_faults` are ignored in favor of the
  /// caller's simulation. Analytic engine only.
  template <typename App>
    requires PropagationApp<App>
  Result<RunAppResult<App>> Run(App app, JobSimulation* sim) const {
    if (options_.engine != EngineKind::kAnalytic) {
      return Status::InvalidArgument(
          std::string("an external JobSimulation only applies to the "
                      "analytic engine (session engine is ") +
          EngineKindName(options_.engine) + ")");
    }
    return internal::RunAnalytic(graph_, placement_, topology_,
                                 std::move(app), options_, sim);
  }

  /// Starts the long-lived query-serving plane over this session: a
  /// GraphService answering k-hop / partition-local shortest-path / cached
  /// NetworkRanking queries concurrently, with weighted admission control.
  /// The per-vertex rank scores are precomputed here by one batch Run of
  /// NetworkRankingApp through the session's engine. Defined in
  /// serve/graph_service.h — include it to call Serve.
  Result<std::unique_ptr<serve::GraphService>> Serve(
      serve::ServeOptions options) const;

  const PartitionedGraph* graph() const { return graph_; }
  const ReplicatedPlacement* placement() const { return placement_; }
  const Topology* topology() const { return topology_; }
  const EngineOptions& options() const { return options_; }

 private:
  Engine(const PartitionedGraph* graph, const ReplicatedPlacement* placement,
         const Topology* topology, EngineOptions options)
      : graph_(graph),
        placement_(placement),
        topology_(topology),
        options_(std::move(options)) {}

  const PartitionedGraph* graph_;
  const ReplicatedPlacement* placement_;
  const Topology* topology_;
  EngineOptions options_;
};

}  // namespace surfer

#endif  // SURFER_CORE_ENGINE_H_
