#ifndef SURFER_CORE_RUN_APP_H_
#define SURFER_CORE_RUN_APP_H_

#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "apps/benchmark_suite.h"
#include "cluster/metrics.h"
#include "cluster/topology.h"
#include "common/result.h"
#include "engine/job_simulation.h"
#include "graph/types.h"
#include "net/distributed.h"
#include "obs/json.h"
#include "obs/telemetry.h"
#include "propagation/app_traits.h"
#include "propagation/config.h"
#include "propagation/runner.h"
#include "runtime/executor.h"
#include "runtime/stats.h"
#include "storage/partitioned_graph.h"
#include "storage/replication.h"

namespace surfer {

/// Which execution engine RunApp dispatches to. Both engines compute
/// bit-identical vertex states; they differ in what they *measure*.
enum class EngineKind {
  /// The sequential PropagationRunner: exact analytic cost model over a
  /// simulated cluster (response time, disk/network bytes, RunMetrics).
  kAnalytic,
  /// The multithreaded RuntimeExecutor: real concurrent execution through
  /// the wire-batch message plane (wall-clock RuntimeStats, channel
  /// backpressure, fault recovery at task granularity).
  kConcurrent,
  /// The multi-process DistributedExecutor: one OS process per machine
  /// group, full-mesh TCP transport carrying the serialized wire batches,
  /// BSP barrier over control frames, fault plans realized as real process
  /// kills with first-alive-replica recovery.
  kDistributed,
};

/// One options struct for both engines. Engine-specific fields are ignored
/// by the other engine; `propagation` applies to both.
struct EngineOptions {
  EngineKind engine = EngineKind::kAnalytic;
  /// Iterations, optimization flags, tracer/metrics hooks (both engines).
  PropagationConfig propagation;
  /// Simulated-hardware parameters (analytic engine only).
  JobSimulationOptions sim;
  /// Machine failures scheduled into the simulation (analytic engine only).
  std::vector<FaultPlan> sim_faults;
  /// Worker count, channel window, wire-batch knobs, runtime fault plans
  /// (concurrent engine only).
  runtime::RuntimeOptions runtime;
  /// Process count, wire knobs, fault/SIGTERM schedule, artifact directory
  /// (distributed engine only).
  net::DistributedOptions distributed;
};

/// What a RunApp call produces, unified across engines. Engine-specific
/// measurements arrive in the two optionals: `metrics` for the analytic
/// cost model, `runtime_stats` for the concurrent runtime. Everything else
/// is engine-independent (and bit-identical between the two).
template <typename App>
  requires PropagationApp<App>
struct RunAppResult {
  using VertexState = typename App::VertexState;
  using VirtualOutput = typename internal::VirtualOutputOf<App>::type;

  std::vector<VertexState> states;
  std::map<uint64_t, VirtualOutput> virtual_outputs;

  /// Message-routing counters (analytic engine only; the runtime reports
  /// its own accounting through `runtime_stats`).
  std::optional<PropagationCounters> counters;
  /// Simulated cost-model metrics (analytic engine).
  std::optional<RunMetrics> metrics;
  /// Measured execution statistics (concurrent engine).
  std::optional<runtime::RuntimeStats> runtime_stats;
  /// Flight-recorder time series, pre-serialized as the run report's
  /// schema-v3 "telemetry" block (concurrent engine with
  /// options.runtime.telemetry.enabled only).
  std::optional<obs::JsonValue> telemetry;
  /// The merged report's "cluster" block (distributed engine): round
  /// timing, offset-corrected per-link latency, the cluster-wide
  /// per-superstep critical path, and the online straggler count.
  std::optional<obs::JsonValue> cluster;

  /// Row-major M x M per-link network bytes, diagonal zero. Analytic runs
  /// report the priced model bytes; concurrent runs report measured wire
  /// bytes. The two reconcile exactly (tests pin this).
  std::vector<double> link_network_bytes;

  /// State of a vertex addressed by its *original* (pre-encoding) ID.
  const VertexState& StateOfOriginal(VertexId original) const {
    return states[graph->encoding().ToEncoded(original)];
  }

  const PartitionedGraph* graph = nullptr;
};

namespace internal {

template <typename App>
Result<RunAppResult<App>> RunAnalytic(const PartitionedGraph* graph,
                                      const ReplicatedPlacement* placement,
                                      const Topology* topology, App app,
                                      const EngineOptions& options,
                                      JobSimulation* sim) {
  PropagationRunner<App> runner(graph, placement, topology, std::move(app),
                                options.propagation);
  std::optional<JobSimulation> local_sim;
  if (sim == nullptr) {
    local_sim.emplace(topology, options.sim);
    for (const FaultPlan& fault : options.sim_faults) {
      local_sim->InjectFault(fault);
    }
    sim = &*local_sim;
  }
  SURFER_RETURN_IF_ERROR(runner.RunWith(sim));
  RunAppResult<App> result;
  result.states = runner.states();
  result.virtual_outputs = runner.virtual_outputs();
  result.counters = runner.counters();
  result.metrics = sim->metrics();
  result.link_network_bytes = runner.link_network_bytes();
  result.graph = graph;
  return result;
}

template <typename App>
Result<RunAppResult<App>> RunConcurrent(const PartitionedGraph* graph,
                                        const ReplicatedPlacement* placement,
                                        const Topology* topology, App app,
                                        const EngineOptions& options) {
  if constexpr (runtime::WireSerializableApp<App>) {
    runtime::RuntimeExecutor<App> executor(graph, placement, topology,
                                           std::move(app), options.propagation,
                                           options.runtime);
    SURFER_RETURN_IF_ERROR(executor.Run());
    RunAppResult<App> result;
    result.states = executor.states();
    result.virtual_outputs = executor.virtual_outputs();
    result.runtime_stats = executor.stats();
    if (executor.telemetry() != nullptr && executor.telemetry()->enabled()) {
      result.telemetry = executor.telemetry()->ToJson();
    }
    const uint32_t n = topology->num_machines();
    result.link_network_bytes.assign(static_cast<size_t>(n) * n, 0.0);
    const std::vector<uint64_t>& measured = executor.stats().link_bytes;
    for (uint32_t src = 0; src < n; ++src) {
      for (uint32_t dst = 0; dst < n; ++dst) {
        const size_t i = static_cast<size_t>(src) * n + dst;
        // The runtime's diagonal carries local (non-network) traffic;
        // the unified matrix only reports network bytes.
        if (src != dst && i < measured.size()) {
          result.link_network_bytes[i] = static_cast<double>(measured[i]);
        }
      }
    }
    result.graph = graph;
    return result;
  } else {
    (void)graph;
    (void)placement;
    (void)topology;
    return Status::InvalidArgument(
        "the concurrent engine requires a trivially-copyable Message "
        "(wire serialization); use EngineKind::kAnalytic for this app");
  }
}

template <typename App>
Result<RunAppResult<App>> RunDistributed(const PartitionedGraph* graph,
                                         const ReplicatedPlacement* placement,
                                         const Topology* topology, App app,
                                         const EngineOptions& options) {
  if constexpr (net::DistributableApp<App>) {
    net::DistributedExecutor<App> executor(graph, placement, topology,
                                           std::move(app), options.propagation,
                                           options.distributed);
    SURFER_RETURN_IF_ERROR(executor.Run());
    RunAppResult<App> result;
    result.states = executor.states();
    result.virtual_outputs = executor.virtual_outputs();
    result.runtime_stats = executor.stats();
    if (executor.cluster_report().is_object()) {
      result.cluster = executor.cluster_report();
    }
    const uint32_t n = topology->num_machines();
    result.link_network_bytes.assign(static_cast<size_t>(n) * n, 0.0);
    const std::vector<uint64_t>& measured = executor.stats().link_bytes;
    for (uint32_t src = 0; src < n; ++src) {
      for (uint32_t dst = 0; dst < n; ++dst) {
        const size_t i = static_cast<size_t>(src) * n + dst;
        // Same convention as the concurrent engine: the diagonal is local
        // traffic, the unified matrix reports network bytes only.
        if (src != dst && i < measured.size()) {
          result.link_network_bytes[i] = static_cast<double>(measured[i]);
        }
      }
    }
    result.graph = graph;
    return result;
  } else {
    (void)graph;
    (void)placement;
    (void)topology;
    return Status::InvalidArgument(
        "the distributed engine requires wire-serializable messages and "
        "trivially-copyable states; use EngineKind::kAnalytic for this app");
  }
}

}  // namespace internal

/// The single front-end for running a propagation application: pick an
/// engine in `options.engine` and get a unified RunAppResult back. This
/// replaces hand-rolled per-engine construction of PropagationRunner /
/// RuntimeExecutor at call sites; the underlying classes remain public for
/// code that needs engine-specific accessors.
///
///   EngineOptions options;
///   options.engine = EngineKind::kConcurrent;
///   options.propagation = PropagationConfig::ForLevel(OptimizationLevel::kO4);
///   auto result = RunApp(setup.graph, setup.placement, setup.topology,
///                        NetworkRankingApp(n), options);
template <typename App>
  requires PropagationApp<App>
Result<RunAppResult<App>> RunApp(const PartitionedGraph* graph,
                                 const ReplicatedPlacement* placement,
                                 const Topology* topology, App app,
                                 const EngineOptions& options) {
  switch (options.engine) {
    case EngineKind::kAnalytic:
      return internal::RunAnalytic(graph, placement, topology, std::move(app),
                                   options, /*sim=*/nullptr);
    case EngineKind::kConcurrent:
      return internal::RunConcurrent(graph, placement, topology,
                                     std::move(app), options);
    case EngineKind::kDistributed:
      return internal::RunDistributed(graph, placement, topology,
                                      std::move(app), options);
  }
  return Status::InvalidArgument("unknown engine kind");
}

/// RunApp on an externally owned simulation (fault-injection experiments,
/// job composition): metrics accumulate into `sim`, and `options.sim` /
/// `options.sim_faults` are ignored in favor of the caller's simulation.
/// Analytic engine only.
template <typename App>
  requires PropagationApp<App>
Result<RunAppResult<App>> RunApp(const PartitionedGraph* graph,
                                 const ReplicatedPlacement* placement,
                                 const Topology* topology, App app,
                                 const EngineOptions& options,
                                 JobSimulation* sim) {
  if (options.engine != EngineKind::kAnalytic) {
    return Status::InvalidArgument(
        "an external JobSimulation only applies to the analytic engine");
  }
  return internal::RunAnalytic(graph, placement, topology, std::move(app),
                               options, sim);
}

/// Convenience overload over a BenchmarkSetup: the setup's sim_options
/// replace `options.sim` (a setup is a ready-to-run bundle; its simulated
/// hardware is part of the bundle).
template <typename App>
  requires PropagationApp<App>
Result<RunAppResult<App>> RunApp(const BenchmarkSetup& setup, App app,
                                 EngineOptions options) {
  options.sim = setup.sim_options;
  return RunApp(setup.graph, setup.placement, setup.topology, std::move(app),
                options);
}

}  // namespace surfer

#endif  // SURFER_CORE_RUN_APP_H_
