#ifndef SURFER_CORE_RUN_APP_H_
#define SURFER_CORE_RUN_APP_H_

#include <utility>

#include "core/engine.h"

namespace surfer {

/// DEPRECATED free-function front-end, kept as thin shims over the session
/// API in core/engine.h. New code opens a surfer::Engine once and calls
/// Run(app) on it:
///
///   SURFER_ASSIGN_OR_RETURN(Engine engine, Engine::Open(setup, options));
///   SURFER_ASSIGN_OR_RETURN(auto run, engine.Run(NetworkRankingApp(n)));
///
/// The shims validate options on every call (through Engine::Open), so they
/// are both slower and noisier than holding a session.

template <typename App>
  requires PropagationApp<App>
[[deprecated(
    "use surfer::Engine::Open(graph, placement, topology, options) + "
    "Engine::Run(app) (core/engine.h)")]]
Result<RunAppResult<App>> RunApp(const PartitionedGraph* graph,
                                 const ReplicatedPlacement* placement,
                                 const Topology* topology, App app,
                                 const EngineOptions& options) {
  SURFER_ASSIGN_OR_RETURN(Engine engine,
                          Engine::Open(graph, placement, topology, options));
  return engine.Run(std::move(app));
}

template <typename App>
  requires PropagationApp<App>
[[deprecated(
    "use surfer::Engine::Open(graph, placement, topology, options) + "
    "Engine::Run(app, sim) (core/engine.h)")]]
Result<RunAppResult<App>> RunApp(const PartitionedGraph* graph,
                                 const ReplicatedPlacement* placement,
                                 const Topology* topology, App app,
                                 const EngineOptions& options,
                                 JobSimulation* sim) {
  SURFER_ASSIGN_OR_RETURN(Engine engine,
                          Engine::Open(graph, placement, topology, options));
  return engine.Run(std::move(app), sim);
}

template <typename App>
  requires PropagationApp<App>
[[deprecated(
    "use surfer::Engine::Open(setup, options) + Engine::Run(app) "
    "(core/engine.h)")]]
Result<RunAppResult<App>> RunApp(const BenchmarkSetup& setup, App app,
                                 EngineOptions options) {
  SURFER_ASSIGN_OR_RETURN(Engine engine, Engine::Open(setup, options));
  return engine.Run(std::move(app));
}

}  // namespace surfer

#endif  // SURFER_CORE_RUN_APP_H_
