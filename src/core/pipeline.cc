#include "core/pipeline.h"

#include <cstdio>

#include "common/units.h"

namespace surfer {

Result<JobPipeline::Report> JobPipeline::Run() {
  if (steps_.empty()) {
    return Status::FailedPrecondition("pipeline has no steps");
  }
  Report report;
  JobSimulation sim(setup_.topology, setup_.sim_options);
  for (const FaultPlan& fault : faults_) {
    sim.InjectFault(fault);
  }
  JobContext context{engine_, setup_, &sim};

  for (auto& [name, step] : steps_) {
    const RunMetrics before = sim.metrics();
    SURFER_RETURN_IF_ERROR(step(context));
    const RunMetrics& after = sim.metrics();
    StepReport step_report;
    step_report.name = name;
    step_report.response_time_s =
        after.response_time_s - before.response_time_s;
    step_report.total_machine_time_s =
        after.total_machine_time_s - before.total_machine_time_s;
    step_report.network_bytes = after.network_bytes - before.network_bytes;
    step_report.disk_bytes = after.disk_bytes - before.disk_bytes;
    report.steps.push_back(std::move(step_report));
  }
  report.totals = sim.metrics();
  return report;
}

std::string JobPipeline::Report::ToString() const {
  std::string out;
  char buf[192];
  for (const StepReport& step : steps) {
    std::snprintf(buf, sizeof(buf),
                  "  %-20s response=%-10s network=%-10s disk=%s\n",
                  step.name.c_str(),
                  FormatSeconds(step.response_time_s).c_str(),
                  FormatBytes(step.network_bytes).c_str(),
                  FormatBytes(step.disk_bytes).c_str());
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), "  %-20s %s\n", "TOTAL",
                totals.Summary().c_str());
  out += buf;
  return out;
}

}  // namespace surfer
