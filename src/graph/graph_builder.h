#ifndef SURFER_GRAPH_GRAPH_BUILDER_H_
#define SURFER_GRAPH_GRAPH_BUILDER_H_

#include <vector>

#include "common/result.h"
#include "graph/graph.h"
#include "graph/types.h"

namespace surfer {

/// Accumulates edges and produces an immutable CSR Graph with sorted,
/// optionally de-duplicated neighbor lists.
class GraphBuilder {
 public:
  /// `num_vertices` fixes the vertex universe [0, num_vertices).
  explicit GraphBuilder(VertexId num_vertices)
      : num_vertices_(num_vertices) {}

  VertexId num_vertices() const { return num_vertices_; }
  size_t num_edges() const { return edges_.size(); }

  /// Appends a directed edge. Returns InvalidArgument for out-of-range
  /// endpoints.
  Status AddEdge(VertexId src, VertexId dst);

  /// Appends both (u,v) and (v,u).
  Status AddUndirectedEdge(VertexId u, VertexId v);

  /// Bulk append; stops at the first invalid edge.
  Status AddEdges(const std::vector<Edge>& edges);

  /// Builds the CSR graph. Neighbor lists come out sorted; duplicate edges
  /// are removed when `dedupe` is true. The builder is consumed.
  Graph Build(bool dedupe = true) &&;

  /// Convenience: build a graph directly from an edge list.
  static Result<Graph> FromEdges(VertexId num_vertices,
                                 const std::vector<Edge>& edges,
                                 bool dedupe = true);

 private:
  VertexId num_vertices_;
  std::vector<Edge> edges_;
};

}  // namespace surfer

#endif  // SURFER_GRAPH_GRAPH_BUILDER_H_
