#include "graph/graph_stats.h"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/units.h"

namespace surfer {

GraphStats ComputeGraphStats(const Graph& graph) {
  GraphStats stats;
  stats.num_vertices = graph.num_vertices();
  stats.num_edges = graph.num_edges();
  stats.stored_bytes = graph.StoredBytes();
  if (stats.num_vertices == 0) {
    return stats;
  }
  stats.avg_out_degree =
      static_cast<double>(stats.num_edges) / stats.num_vertices;

  std::vector<size_t> degrees(stats.num_vertices);
  for (VertexId v = 0; v < stats.num_vertices; ++v) {
    degrees[v] = graph.OutDegree(v);
    stats.max_out_degree = std::max(stats.max_out_degree, degrees[v]);
    if (degrees[v] == 0) {
      ++stats.num_isolated;
    }
  }

  // Gini index over the sorted degree sequence.
  std::sort(degrees.begin(), degrees.end());
  double weighted_sum = 0.0;
  double total = 0.0;
  for (size_t i = 0; i < degrees.size(); ++i) {
    weighted_sum += static_cast<double>(i + 1) * degrees[i];
    total += static_cast<double>(degrees[i]);
  }
  if (total > 0) {
    const double n = static_cast<double>(degrees.size());
    stats.degree_gini = (2.0 * weighted_sum) / (n * total) - (n + 1.0) / n;
  }
  return stats;
}

std::string GraphStats::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "vertices=%u edges=%llu avg_deg=%.2f max_deg=%zu "
                "isolated=%zu gini=%.3f stored=%s",
                num_vertices, static_cast<unsigned long long>(num_edges),
                avg_out_degree, max_out_degree, num_isolated, degree_gini,
                FormatBytes(static_cast<double>(stored_bytes)).c_str());
  return buf;
}

}  // namespace surfer
