#include "graph/graph.h"

#include <algorithm>

namespace surfer {

size_t Graph::StoredBytes() const {
  return StoredBytesOfRange(0, num_vertices());
}

size_t Graph::StoredBytesOfRange(VertexId begin, VertexId end) const {
  if (begin >= end) {
    return 0;
  }
  const size_t vertices = end - begin;
  const size_t edges =
      static_cast<size_t>(offsets_[end] - offsets_[begin]);
  return vertices * (kStoredVertexIdBytes + kStoredDegreeBytes) +
         edges * kStoredVertexIdBytes;
}

Graph Graph::Reversed() const {
  const VertexId n = num_vertices();
  std::vector<EdgeIndex> in_offsets(n + 1, 0);
  for (VertexId v : neighbors_) {
    ++in_offsets[v + 1];
  }
  for (VertexId v = 0; v < n; ++v) {
    in_offsets[v + 1] += in_offsets[v];
  }
  std::vector<VertexId> in_neighbors(neighbors_.size());
  std::vector<EdgeIndex> cursor(in_offsets.begin(), in_offsets.end() - 1);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v : OutNeighbors(u)) {
      in_neighbors[cursor[v]++] = u;
    }
  }
  // Reversed adjacency comes out sorted by source, so each list is sorted.
  return Graph(std::move(in_offsets), std::move(in_neighbors));
}

Graph Graph::Undirected() const {
  const VertexId n = num_vertices();
  // Count both directions, then sort + dedupe per vertex.
  std::vector<EdgeIndex> degree(n + 1, 0);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v : OutNeighbors(u)) {
      if (u == v) {
        continue;  // self-loops carry no cross-partition traffic
      }
      ++degree[u + 1];
      ++degree[v + 1];
    }
  }
  std::vector<EdgeIndex> offsets(n + 1, 0);
  for (VertexId v = 0; v < n; ++v) {
    offsets[v + 1] = offsets[v] + degree[v + 1];
  }
  std::vector<VertexId> adj(offsets[n]);
  std::vector<EdgeIndex> cursor(offsets.begin(), offsets.end() - 1);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v : OutNeighbors(u)) {
      if (u == v) {
        continue;
      }
      adj[cursor[u]++] = v;
      adj[cursor[v]++] = u;
    }
  }
  // Dedupe in place.
  std::vector<EdgeIndex> new_offsets(n + 1, 0);
  EdgeIndex write = 0;
  for (VertexId v = 0; v < n; ++v) {
    const EdgeIndex begin = offsets[v];
    const EdgeIndex end = offsets[v + 1];
    std::sort(adj.begin() + begin, adj.begin() + end);
    EdgeIndex unique_end = write;
    for (EdgeIndex i = begin; i < end; ++i) {
      if (unique_end == write || adj[unique_end - 1] != adj[i]) {
        adj[unique_end++] = adj[i];
      }
    }
    write = unique_end;
    new_offsets[v + 1] = write;
  }
  adj.resize(write);
  return Graph(std::move(new_offsets), std::move(adj));
}

bool Graph::HasEdge(VertexId u, VertexId v) const {
  auto nbrs = OutNeighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

}  // namespace surfer
