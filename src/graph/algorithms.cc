#include "graph/algorithms.h"

#include <algorithm>
#include <deque>
#include <numeric>
#include <unordered_set>

#include "common/random.h"

namespace surfer {

std::vector<uint32_t> BfsDistances(const Graph& graph, VertexId source) {
  return MultiSourceBfsDistances(graph, {source});
}

std::vector<uint32_t> MultiSourceBfsDistances(
    const Graph& graph, const std::vector<VertexId>& sources) {
  std::vector<uint32_t> dist(graph.num_vertices(), kUnreachableDistance);
  std::deque<VertexId> queue;
  for (VertexId s : sources) {
    if (s < graph.num_vertices() && dist[s] == kUnreachableDistance) {
      dist[s] = 0;
      queue.push_back(s);
    }
  }
  while (!queue.empty()) {
    const VertexId u = queue.front();
    queue.pop_front();
    for (VertexId v : graph.OutNeighbors(u)) {
      if (dist[v] == kUnreachableDistance) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

std::vector<VertexId> WeaklyConnectedComponents(const Graph& graph) {
  const Graph undirected = graph.Undirected();
  const VertexId n = undirected.num_vertices();
  std::vector<VertexId> label(n, kInvalidVertex);
  std::deque<VertexId> queue;
  for (VertexId root = 0; root < n; ++root) {
    if (label[root] != kInvalidVertex) {
      continue;
    }
    label[root] = root;
    queue.push_back(root);
    while (!queue.empty()) {
      const VertexId u = queue.front();
      queue.pop_front();
      for (VertexId v : undirected.OutNeighbors(u)) {
        if (label[v] == kInvalidVertex) {
          label[v] = root;
          queue.push_back(v);
        }
      }
    }
  }
  return label;
}

size_t CountWeaklyConnectedComponents(const Graph& graph) {
  const auto labels = WeaklyConnectedComponents(graph);
  size_t count = 0;
  for (VertexId v = 0; v < labels.size(); ++v) {
    if (labels[v] == v) {
      ++count;
    }
  }
  return count;
}

uint32_t EstimateDiameter(const Graph& graph, uint32_t samples,
                          uint64_t seed) {
  const VertexId n = graph.num_vertices();
  if (n == 0) {
    return 0;
  }
  Rng rng(seed);
  uint32_t diameter = 0;
  const uint32_t actual_samples = std::min<uint32_t>(samples, n);
  for (uint32_t i = 0; i < actual_samples; ++i) {
    const VertexId source =
        samples >= n ? static_cast<VertexId>(i)
                     : static_cast<VertexId>(rng.Uniform(n));
    const auto dist = BfsDistances(graph, source);
    for (uint32_t d : dist) {
      if (d != kUnreachableDistance) {
        diameter = std::max(diameter, d);
      }
    }
  }
  return diameter;
}

std::vector<double> ReferencePageRank(const Graph& graph, int iterations,
                                      double damping) {
  const VertexId n = graph.num_vertices();
  if (n == 0) {
    return {};
  }
  std::vector<double> rank(n, 1.0 / n);
  std::vector<double> next(n, 0.0);
  for (int it = 0; it < iterations; ++it) {
    std::fill(next.begin(), next.end(), (1.0 - damping) / n);
    for (VertexId u = 0; u < n; ++u) {
      const size_t degree = graph.OutDegree(u);
      if (degree == 0) {
        continue;  // rank leaks, matching the paper's update rule
      }
      const double share = damping * rank[u] / static_cast<double>(degree);
      for (VertexId v : graph.OutNeighbors(u)) {
        next[v] += share;
      }
    }
    rank.swap(next);
  }
  return rank;
}

uint64_t ReferenceTriangleCount(const Graph& graph) {
  // Count on the symmetrized graph with the standard ordered-wedge method:
  // for each edge (u, v) with u < v, intersect higher-ordered neighbors.
  const Graph und = graph.Undirected();
  const VertexId n = und.num_vertices();
  uint64_t triangles = 0;
  for (VertexId u = 0; u < n; ++u) {
    const auto u_nbrs = und.OutNeighbors(u);
    for (VertexId v : u_nbrs) {
      if (v <= u) {
        continue;
      }
      const auto v_nbrs = und.OutNeighbors(v);
      // Intersect neighbors w > v of both u and v.
      auto it_u = std::lower_bound(u_nbrs.begin(), u_nbrs.end(), v + 1);
      auto it_v = std::lower_bound(v_nbrs.begin(), v_nbrs.end(), v + 1);
      while (it_u != u_nbrs.end() && it_v != v_nbrs.end()) {
        if (*it_u < *it_v) {
          ++it_u;
        } else if (*it_v < *it_u) {
          ++it_v;
        } else {
          ++triangles;
          ++it_u;
          ++it_v;
        }
      }
    }
  }
  return triangles;
}

std::vector<VertexId> ReferenceTwoHopNeighbors(const Graph& graph,
                                               VertexId v) {
  std::unordered_set<VertexId> result;
  for (VertexId u : graph.OutNeighbors(v)) {
    for (VertexId w : graph.OutNeighbors(u)) {
      if (w != v) {
        result.insert(w);
      }
    }
  }
  std::vector<VertexId> sorted(result.begin(), result.end());
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

std::vector<uint64_t> ReferenceDegreeHistogram(const Graph& graph) {
  size_t max_degree = 0;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    max_degree = std::max(max_degree, graph.OutDegree(v));
  }
  std::vector<uint64_t> histogram(max_degree + 1, 0);
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    ++histogram[graph.OutDegree(v)];
  }
  return histogram;
}

}  // namespace surfer
