#include "graph/graph_builder.h"

#include <algorithm>
#include <string>

namespace surfer {

Status GraphBuilder::AddEdge(VertexId src, VertexId dst) {
  if (src >= num_vertices_ || dst >= num_vertices_) {
    return Status::InvalidArgument(
        "edge (" + std::to_string(src) + ", " + std::to_string(dst) +
        ") out of range for " + std::to_string(num_vertices_) + " vertices");
  }
  edges_.push_back(Edge{src, dst});
  return Status::OK();
}

Status GraphBuilder::AddUndirectedEdge(VertexId u, VertexId v) {
  SURFER_RETURN_IF_ERROR(AddEdge(u, v));
  if (u != v) {
    SURFER_RETURN_IF_ERROR(AddEdge(v, u));
  }
  return Status::OK();
}

Status GraphBuilder::AddEdges(const std::vector<Edge>& edges) {
  edges_.reserve(edges_.size() + edges.size());
  for (const Edge& e : edges) {
    SURFER_RETURN_IF_ERROR(AddEdge(e.src, e.dst));
  }
  return Status::OK();
}

Graph GraphBuilder::Build(bool dedupe) && {
  const VertexId n = num_vertices_;
  std::vector<EdgeIndex> offsets(n + 1, 0);
  for (const Edge& e : edges_) {
    ++offsets[e.src + 1];
  }
  for (VertexId v = 0; v < n; ++v) {
    offsets[v + 1] += offsets[v];
  }
  std::vector<VertexId> neighbors(edges_.size());
  std::vector<EdgeIndex> cursor(offsets.begin(), offsets.end() - 1);
  for (const Edge& e : edges_) {
    neighbors[cursor[e.src]++] = e.dst;
  }
  edges_.clear();
  edges_.shrink_to_fit();

  for (VertexId v = 0; v < n; ++v) {
    std::sort(neighbors.begin() + offsets[v], neighbors.begin() + offsets[v + 1]);
  }
  if (!dedupe) {
    return Graph(std::move(offsets), std::move(neighbors));
  }
  std::vector<EdgeIndex> new_offsets(n + 1, 0);
  EdgeIndex write = 0;
  for (VertexId v = 0; v < n; ++v) {
    const EdgeIndex begin = offsets[v];
    const EdgeIndex end = offsets[v + 1];
    EdgeIndex unique_end = write;
    for (EdgeIndex i = begin; i < end; ++i) {
      if (unique_end == write || neighbors[unique_end - 1] != neighbors[i]) {
        neighbors[unique_end++] = neighbors[i];
      }
    }
    write = unique_end;
    new_offsets[v + 1] = write;
  }
  neighbors.resize(write);
  return Graph(std::move(new_offsets), std::move(neighbors));
}

Result<Graph> GraphBuilder::FromEdges(VertexId num_vertices,
                                      const std::vector<Edge>& edges,
                                      bool dedupe) {
  GraphBuilder builder(num_vertices);
  SURFER_RETURN_IF_ERROR(builder.AddEdges(edges));
  return std::move(builder).Build(dedupe);
}

}  // namespace surfer
