#ifndef SURFER_GRAPH_ALGORITHMS_H_
#define SURFER_GRAPH_ALGORITHMS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace surfer {

/// Single-machine reference implementations used as verification oracles for
/// the distributed engines, and as building blocks for the partitioner
/// (BFS/diameter) and cascaded propagation (V_k levels).

/// BFS distances from `source` along out-edges; kUnreachable for vertices
/// not reached.
inline constexpr uint32_t kUnreachableDistance = UINT32_MAX;
std::vector<uint32_t> BfsDistances(const Graph& graph, VertexId source);

/// Multi-source BFS: distance to the nearest of `sources`.
std::vector<uint32_t> MultiSourceBfsDistances(
    const Graph& graph, const std::vector<VertexId>& sources);

/// Weakly connected component label per vertex (labels are the smallest
/// vertex ID in the component).
std::vector<VertexId> WeaklyConnectedComponents(const Graph& graph);

/// Number of distinct weakly connected components.
size_t CountWeaklyConnectedComponents(const Graph& graph);

/// Eccentricity-sampled pseudo-diameter: max BFS depth over `samples`
/// randomly chosen sources (exact on small graphs when samples >= n).
/// Only reachable vertices count. Returns 0 for an empty graph.
uint32_t EstimateDiameter(const Graph& graph, uint32_t samples,
                          uint64_t seed = 1);

/// Reference PageRank with the paper's update rule
///   PR(v) = (1-d)/N + d * sum(PR(t)/C(t)) over in-neighbors t,
/// where C(t) is the out-degree of t. Vertices with zero out-degree simply
/// leak rank (matching the paper's formula, which has no dangling-node
/// correction). Starts from PR = 1/N.
std::vector<double> ReferencePageRank(const Graph& graph, int iterations,
                                      double damping = 0.85);

/// Exact count of undirected triangles: unordered vertex triples {a, b, c}
/// with an edge in either direction between every pair.
uint64_t ReferenceTriangleCount(const Graph& graph);

/// Two-hop out-neighborhood of `v`: distinct vertices w != v reachable by a
/// path v -> u -> w, excluding direct neighbors? No — the paper's TFL keeps
/// all distinct vertices appearing in neighbors' neighbor lists; we return
/// exactly that set (sorted), excluding v itself.
std::vector<VertexId> ReferenceTwoHopNeighbors(const Graph& graph, VertexId v);

/// Out-degree histogram: result[d] = number of vertices with out-degree d.
std::vector<uint64_t> ReferenceDegreeHistogram(const Graph& graph);

}  // namespace surfer

#endif  // SURFER_GRAPH_ALGORITHMS_H_
