#ifndef SURFER_GRAPH_GRAPH_STATS_H_
#define SURFER_GRAPH_GRAPH_STATS_H_

#include <cstdint>
#include <string>

#include "graph/graph.h"

namespace surfer {

/// Summary statistics for a graph, printed by examples and benches.
struct GraphStats {
  VertexId num_vertices = 0;
  EdgeIndex num_edges = 0;
  double avg_out_degree = 0.0;
  size_t max_out_degree = 0;
  size_t num_isolated = 0;      ///< vertices with out-degree 0
  size_t stored_bytes = 0;      ///< paper-format adjacency bytes
  double degree_gini = 0.0;     ///< inequality of the degree distribution

  std::string ToString() const;
};

/// Computes summary statistics in one pass (plus a sort for the Gini index).
GraphStats ComputeGraphStats(const Graph& graph);

}  // namespace surfer

#endif  // SURFER_GRAPH_GRAPH_STATS_H_
