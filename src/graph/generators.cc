#include "graph/generators.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/random.h"
#include "graph/graph_builder.h"

namespace surfer {

namespace {

/// Rounds n up to the next power of two (min 2).
VertexId NextPowerOfTwo(VertexId n) {
  if (n <= 2) {
    return 2;
  }
  return static_cast<VertexId>(std::bit_ceil(static_cast<uint32_t>(n)));
}

/// Draws one R-MAT edge in an n x n adjacency matrix, n a power of two.
Edge DrawRmatEdge(VertexId n, const RmatOptions& opt, Rng& rng) {
  VertexId row = 0;
  VertexId col = 0;
  for (VertexId size = n; size > 1; size /= 2) {
    const double r = rng.NextDouble();
    const VertexId half = size / 2;
    if (r < opt.a) {
      // top-left quadrant: no offset
    } else if (r < opt.a + opt.b) {
      col += half;
    } else if (r < opt.a + opt.b + opt.c) {
      row += half;
    } else {
      row += half;
      col += half;
    }
  }
  return Edge{row, col};
}

Status ValidateRmat(const RmatOptions& opt) {
  const double sum = opt.a + opt.b + opt.c + opt.d;
  if (opt.a <= 0 || opt.b <= 0 || opt.c <= 0 || opt.d <= 0 ||
      std::abs(sum - 1.0) > 1e-9) {
    return Status::InvalidArgument(
        "R-MAT probabilities must be positive and sum to 1");
  }
  if (opt.num_vertices < 2) {
    return Status::InvalidArgument("R-MAT graph needs at least 2 vertices");
  }
  return Status::OK();
}

}  // namespace

Result<Graph> GenerateRmat(const RmatOptions& options) {
  SURFER_RETURN_IF_ERROR(ValidateRmat(options));
  const VertexId n = NextPowerOfTwo(options.num_vertices);
  Rng rng(options.seed);

  std::vector<VertexId> permutation(n);
  std::iota(permutation.begin(), permutation.end(), 0);
  if (options.permute) {
    std::shuffle(permutation.begin(), permutation.end(), rng);
  }

  GraphBuilder builder(n);
  uint64_t added = 0;
  // Cap rejection retries so adversarial parameters still terminate.
  uint64_t attempts = 0;
  const uint64_t max_attempts = options.num_edges * 20 + 1000;
  while (added < options.num_edges && attempts < max_attempts) {
    ++attempts;
    Edge e = DrawRmatEdge(n, options, rng);
    if (e.src == e.dst) {
      continue;  // skip self-loops
    }
    SURFER_RETURN_IF_ERROR(
        builder.AddEdge(permutation[e.src], permutation[e.dst]));
    ++added;
  }
  return std::move(builder).Build(/*dedupe=*/true);
}

Result<Graph> GenerateErdosRenyi(const ErdosRenyiOptions& options) {
  if (options.num_vertices < 2) {
    return Status::InvalidArgument("ER graph needs at least 2 vertices");
  }
  Rng rng(options.seed);
  GraphBuilder builder(options.num_vertices);
  for (uint64_t i = 0; i < options.num_edges; ++i) {
    const VertexId u =
        static_cast<VertexId>(rng.Uniform(options.num_vertices));
    VertexId v = static_cast<VertexId>(rng.Uniform(options.num_vertices));
    if (u == v) {
      v = (v + 1) % options.num_vertices;
    }
    SURFER_RETURN_IF_ERROR(builder.AddEdge(u, v));
  }
  return std::move(builder).Build(/*dedupe=*/true);
}

Result<Graph> GenerateCompositeSmallWorld(
    const CompositeSmallWorldOptions& options) {
  if (options.num_components == 0) {
    return Status::InvalidArgument("need at least one component");
  }
  if (options.rewire_ratio < 0.0 || options.rewire_ratio > 1.0) {
    return Status::InvalidArgument("rewire_ratio must be within [0, 1]");
  }
  Rng rng(options.seed);

  // Each component is an R-MAT graph over its own ID range.
  RmatOptions comp = options.component_rmat;
  comp.num_vertices = options.vertices_per_component;
  comp.num_edges = options.edges_per_component;

  std::vector<Edge> edges;
  VertexId total_vertices = 0;
  std::vector<VertexId> component_base(options.num_components, 0);
  for (uint32_t c = 0; c < options.num_components; ++c) {
    comp.seed = options.seed * 1315423911ULL + c + 1;
    SURFER_ASSIGN_OR_RETURN(Graph g, GenerateRmat(comp));
    component_base[c] = total_vertices;
    for (VertexId u = 0; u < g.num_vertices(); ++u) {
      for (VertexId v : g.OutNeighbors(u)) {
        edges.push_back(Edge{total_vertices + u, total_vertices + v});
      }
    }
    total_vertices += g.num_vertices();
  }

  // Rewire a p_r fraction of all edges: keep the source, retarget the
  // destination to a uniformly random vertex in a *different* component.
  // This is the paper's method of stitching components into one graph.
  const uint64_t num_rewired = static_cast<uint64_t>(
      std::llround(options.rewire_ratio * static_cast<double>(edges.size())));
  const VertexId comp_size = total_vertices / options.num_components;
  for (uint64_t i = 0; i < num_rewired && !edges.empty(); ++i) {
    Edge& e = edges[rng.Uniform(edges.size())];
    const uint32_t src_comp = e.src / comp_size;
    uint32_t dst_comp = static_cast<uint32_t>(
        rng.Uniform(options.num_components));
    if (dst_comp == src_comp) {
      dst_comp = (dst_comp + 1) % options.num_components;
    }
    const VertexId base = component_base[std::min(
        dst_comp, options.num_components - 1)];
    e.dst = base + static_cast<VertexId>(rng.Uniform(comp_size));
    if (e.dst == e.src) {
      e.dst = base;
    }
  }

  return GraphBuilder::FromEdges(total_vertices, edges, /*dedupe=*/true);
}

Result<Graph> GenerateSocialGraph(const SocialGraphOptions& options) {
  if (options.num_communities == 0) {
    return Status::InvalidArgument("need at least one community");
  }
  CompositeSmallWorldOptions composite;
  composite.num_components = options.num_communities;
  composite.vertices_per_component = std::max<VertexId>(
      2, options.num_vertices / options.num_communities);
  composite.edges_per_component = static_cast<uint64_t>(
      std::llround(options.avg_out_degree *
                   static_cast<double>(composite.vertices_per_component)));
  composite.rewire_ratio = options.rewire_ratio;
  composite.seed = options.seed;
  // Social networks are heavy-tailed; skew the R-MAT quadrants harder than
  // the defaults to deepen the power-law.
  composite.component_rmat.a = 0.6;
  composite.component_rmat.b = 0.18;
  composite.component_rmat.c = 0.18;
  composite.component_rmat.d = 0.04;
  return GenerateCompositeSmallWorld(composite);
}

}  // namespace surfer
