#ifndef SURFER_GRAPH_GRAPH_IO_H_
#define SURFER_GRAPH_GRAPH_IO_H_

#include <string>

#include "common/result.h"
#include "graph/graph.h"

namespace surfer {

/// Serialization of graphs in the paper's adjacency-list record layout
/// <ID (8 B), degree (4 B), neighbor IDs (8 B each)> preceded by a small
/// header. Real files, used by examples and storage tests; the simulated
/// storage layer accounts the same byte counts without touching the disk.

/// Writes `graph` to `path` in binary adjacency-list format.
Status WriteGraphFile(const Graph& graph, const std::string& path);

/// Reads a graph written by WriteGraphFile.
Result<Graph> ReadGraphFile(const std::string& path);

/// Writes a plain-text edge list ("src dst\n" per edge) for interop.
Status WriteEdgeListText(const Graph& graph, const std::string& path);

/// Reads a plain-text edge list; lines starting with '#' are comments.
/// Vertices are the max ID seen + 1.
Result<Graph> ReadEdgeListText(const std::string& path);

}  // namespace surfer

#endif  // SURFER_GRAPH_GRAPH_IO_H_
