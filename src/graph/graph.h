#ifndef SURFER_GRAPH_GRAPH_H_
#define SURFER_GRAPH_GRAPH_H_

#include <cstddef>
#include <span>
#include <vector>

#include "graph/types.h"

namespace surfer {

/// An immutable directed graph in CSR (compressed sparse row) form.
///
/// Vertices are dense IDs [0, num_vertices). Out-neighbors of v live in
/// `neighbors[offsets[v] .. offsets[v+1])`. The structure is append-built by
/// GraphBuilder and never mutated afterwards; engines treat it as shared
/// read-only data.
class Graph {
 public:
  Graph() = default;
  Graph(std::vector<EdgeIndex> offsets, std::vector<VertexId> neighbors)
      : offsets_(std::move(offsets)), neighbors_(std::move(neighbors)) {}

  VertexId num_vertices() const {
    return offsets_.empty() ? 0 : static_cast<VertexId>(offsets_.size() - 1);
  }
  EdgeIndex num_edges() const { return neighbors_.size(); }

  /// Out-degree of v.
  size_t OutDegree(VertexId v) const {
    return static_cast<size_t>(offsets_[v + 1] - offsets_[v]);
  }

  /// Out-neighbors of v as a contiguous span.
  std::span<const VertexId> OutNeighbors(VertexId v) const {
    return {neighbors_.data() + offsets_[v],
            neighbors_.data() + offsets_[v + 1]};
  }

  const std::vector<EdgeIndex>& offsets() const { return offsets_; }
  const std::vector<VertexId>& neighbors() const { return neighbors_; }

  /// Simulated on-disk size of the whole graph in the paper's adjacency-list
  /// record format (Section 3).
  size_t StoredBytes() const;

  /// Simulated stored size of the vertex range [begin, end).
  size_t StoredBytesOfRange(VertexId begin, VertexId end) const;

  /// Builds the transposed (reverse) graph: edge (u,v) becomes (v,u).
  Graph Reversed() const;

  /// Builds the undirected (symmetrized, deduplicated) version. Used by the
  /// partitioner, which treats cross-partition traffic as direction-free.
  Graph Undirected() const;

  /// True if edge (u, v) exists (binary search when neighbor lists are
  /// sorted, which GraphBuilder guarantees; linear scan otherwise is still
  /// correct because the list is small).
  bool HasEdge(VertexId u, VertexId v) const;

  bool operator==(const Graph&) const = default;

 private:
  // offsets_.size() == num_vertices + 1; offsets_[0] == 0.
  std::vector<EdgeIndex> offsets_;
  std::vector<VertexId> neighbors_;
};

}  // namespace surfer

#endif  // SURFER_GRAPH_GRAPH_H_
