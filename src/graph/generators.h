#ifndef SURFER_GRAPH_GENERATORS_H_
#define SURFER_GRAPH_GENERATORS_H_

#include <cstdint>

#include "common/result.h"
#include "graph/graph.h"
#include "graph/types.h"

namespace surfer {

/// Parameters for the R-MAT recursive generator (Chakrabarti et al., the
/// generator the paper cites for its synthetic graphs). Probabilities must be
/// positive and sum to 1.
struct RmatOptions {
  VertexId num_vertices = 1 << 14;  ///< rounded up to a power of two
  uint64_t num_edges = 1 << 17;
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;
  double d = 0.05;
  /// Randomly permute vertex IDs so locality does not leak from the
  /// generation order. The partitioner has to *discover* structure.
  bool permute = true;
  uint64_t seed = 42;
};

/// Generates a directed R-MAT graph (duplicates removed, self-loops kept out).
Result<Graph> GenerateRmat(const RmatOptions& options);

/// Erdős–Rényi G(n, m): m directed edges chosen uniformly.
struct ErdosRenyiOptions {
  VertexId num_vertices = 1 << 14;
  uint64_t num_edges = 1 << 17;
  uint64_t seed = 42;
};
Result<Graph> GenerateErdosRenyi(const ErdosRenyiOptions& options);

/// The paper's synthetic recipe (Appendix F.1): generate `num_components`
/// small graphs with small-world characteristics, then rewire a ratio
/// `rewire_ratio` (p_r, default 5%) of all edges to connect the components
/// into one large graph.
struct CompositeSmallWorldOptions {
  uint32_t num_components = 16;
  VertexId vertices_per_component = 1 << 12;
  uint64_t edges_per_component = 1 << 15;
  double rewire_ratio = 0.05;  ///< the paper's default p_r = 5%
  RmatOptions component_rmat;  ///< shape of each component (sizes overridden)
  uint64_t seed = 42;
};
Result<Graph> GenerateCompositeSmallWorld(
    const CompositeSmallWorldOptions& options);

/// A scaled-down stand-in for the MSN social-network snapshot: a composite
/// small-world graph whose edge/vertex ratio (~58 edges per vertex in the
/// real snapshot is impractical at laptop scale; we keep a configurable
/// multiplier) and community structure mimic a social network.
struct SocialGraphOptions {
  VertexId num_vertices = 1 << 16;
  double avg_out_degree = 16.0;
  uint32_t num_communities = 32;
  double rewire_ratio = 0.05;
  uint64_t seed = 2007;  ///< the snapshot year, for flavor
};
Result<Graph> GenerateSocialGraph(const SocialGraphOptions& options);

}  // namespace surfer

#endif  // SURFER_GRAPH_GENERATORS_H_
