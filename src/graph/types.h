#ifndef SURFER_GRAPH_TYPES_H_
#define SURFER_GRAPH_TYPES_H_

#include <cstddef>
#include <cstdint>
#include <limits>

namespace surfer {

/// Vertex identifier. 32 bits covers the graph scales this repository runs
/// (the paper's MSN graph would need 64; the storage *format* below still
/// accounts 8 bytes per ID to match the paper's byte model).
using VertexId = uint32_t;

/// Edge index into a CSR neighbor array.
using EdgeIndex = uint64_t;

/// Partition identifier (the paper uses P <= 128 partitions).
using PartitionId = uint32_t;

/// Machine identifier within a simulated cluster.
using MachineId = uint32_t;

inline constexpr VertexId kInvalidVertex =
    std::numeric_limits<VertexId>::max();
inline constexpr PartitionId kInvalidPartition =
    std::numeric_limits<PartitionId>::max();
inline constexpr MachineId kInvalidMachine =
    std::numeric_limits<MachineId>::max();

/// A directed edge (source -> destination).
struct Edge {
  VertexId src = 0;
  VertexId dst = 0;

  bool operator==(const Edge&) const = default;
};

/// On-"disk" record sizes for the paper's adjacency-list format
/// <ID, d, neighbors> (Section 3): 8-byte vertex IDs, 4-byte degree. All
/// simulated disk/network byte accounting uses these constants so that I/O
/// *ratios* match the paper irrespective of in-memory representation.
inline constexpr size_t kStoredVertexIdBytes = 8;
inline constexpr size_t kStoredDegreeBytes = 4;

/// Bytes of the stored adjacency record for a vertex of degree d.
constexpr size_t StoredVertexRecordBytes(size_t degree) {
  return kStoredVertexIdBytes + kStoredDegreeBytes +
         degree * kStoredVertexIdBytes;
}

}  // namespace surfer

#endif  // SURFER_GRAPH_TYPES_H_
