#include "graph/graph_io.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "graph/graph_builder.h"

namespace surfer {

namespace {
constexpr uint64_t kMagic = 0x5355524645521001ULL;  // "SURFER" + version

template <typename T>
void WritePod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}
}  // namespace

Status WriteGraphFile(const Graph& graph, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IOError("cannot open for write: " + path);
  }
  WritePod(out, kMagic);
  WritePod(out, static_cast<uint64_t>(graph.num_vertices()));
  WritePod(out, static_cast<uint64_t>(graph.num_edges()));
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    // The paper's record: <ID (8 B), degree (4 B), neighbors (8 B each)>.
    WritePod(out, static_cast<uint64_t>(v));
    WritePod(out, static_cast<uint32_t>(graph.OutDegree(v)));
    for (VertexId nbr : graph.OutNeighbors(v)) {
      WritePod(out, static_cast<uint64_t>(nbr));
    }
  }
  if (!out) {
    return Status::IOError("short write: " + path);
  }
  return Status::OK();
}

Result<Graph> ReadGraphFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot open for read: " + path);
  }
  uint64_t magic = 0;
  uint64_t num_vertices = 0;
  uint64_t num_edges = 0;
  if (!ReadPod(in, &magic) || magic != kMagic) {
    return Status::Corruption("bad magic in " + path);
  }
  if (!ReadPod(in, &num_vertices) || !ReadPod(in, &num_edges)) {
    return Status::Corruption("truncated header in " + path);
  }
  std::vector<EdgeIndex> offsets;
  offsets.reserve(num_vertices + 1);
  offsets.push_back(0);
  std::vector<VertexId> neighbors;
  neighbors.reserve(num_edges);
  for (uint64_t v = 0; v < num_vertices; ++v) {
    uint64_t id = 0;
    uint32_t degree = 0;
    if (!ReadPod(in, &id) || !ReadPod(in, &degree)) {
      return Status::Corruption("truncated record in " + path);
    }
    if (id != v) {
      return Status::Corruption("record out of order in " + path);
    }
    for (uint32_t i = 0; i < degree; ++i) {
      uint64_t nbr = 0;
      if (!ReadPod(in, &nbr)) {
        return Status::Corruption("truncated neighbor list in " + path);
      }
      if (nbr >= num_vertices) {
        return Status::Corruption("neighbor out of range in " + path);
      }
      neighbors.push_back(static_cast<VertexId>(nbr));
    }
    offsets.push_back(neighbors.size());
  }
  if (neighbors.size() != num_edges) {
    return Status::Corruption("edge count mismatch in " + path);
  }
  return Graph(std::move(offsets), std::move(neighbors));
}

Status WriteEdgeListText(const Graph& graph, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::IOError("cannot open for write: " + path);
  }
  out << "# surfer edge list: " << graph.num_vertices() << " vertices, "
      << graph.num_edges() << " edges\n";
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    for (VertexId nbr : graph.OutNeighbors(v)) {
      out << v << ' ' << nbr << '\n';
    }
  }
  if (!out) {
    return Status::IOError("short write: " + path);
  }
  return Status::OK();
}

Result<Graph> ReadEdgeListText(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot open for read: " + path);
  }
  std::vector<Edge> edges;
  VertexId max_vertex = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::istringstream ss(line);
    uint64_t src = 0;
    uint64_t dst = 0;
    if (!(ss >> src >> dst)) {
      return Status::Corruption("unparsable line in " + path + ": " + line);
    }
    edges.push_back(
        Edge{static_cast<VertexId>(src), static_cast<VertexId>(dst)});
    max_vertex = std::max({max_vertex, static_cast<VertexId>(src),
                           static_cast<VertexId>(dst)});
  }
  const VertexId n = edges.empty() ? 0 : max_vertex + 1;
  return GraphBuilder::FromEdges(n, edges, /*dedupe=*/false);
}

}  // namespace surfer
