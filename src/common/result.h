#ifndef SURFER_COMMON_RESULT_H_
#define SURFER_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace surfer {

/// Holds either a value of type T or an error Status. The OK state always has
/// a value; the error state never does.
template <typename T>
class Result {
 public:
  /// Implicit from value: `return my_graph;`
  Result(T value) : value_(std::move(value)) {}
  /// Implicit from error status: `return Status::IOError(...)`. Must not be
  /// OK — an OK status carries no value.
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when in the error state.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace surfer

/// Assigns the value of a Result expression to `lhs`, or propagates the error.
#define SURFER_ASSIGN_OR_RETURN(lhs, expr)          \
  SURFER_ASSIGN_OR_RETURN_IMPL_(                    \
      SURFER_RESULT_CONCAT_(_surfer_result_, __LINE__), lhs, expr)

#define SURFER_RESULT_CONCAT_INNER_(a, b) a##b
#define SURFER_RESULT_CONCAT_(a, b) SURFER_RESULT_CONCAT_INNER_(a, b)

#define SURFER_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) {                                    \
    return tmp.status();                              \
  }                                                   \
  lhs = std::move(tmp).value()

#endif  // SURFER_COMMON_RESULT_H_
