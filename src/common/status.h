#ifndef SURFER_COMMON_STATUS_H_
#define SURFER_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace surfer {

/// Error categories used throughout Surfer. Mirrors the RocksDB/Arrow idiom:
/// fallible functions return a Status (or Result<T>) instead of throwing.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kIOError,
  kCorruption,
  kResourceExhausted,
  kUnavailable,
  kInternal,
  kNotSupported,
};

/// Returns a human-readable name for a status code ("OK", "IOError", ...).
std::string_view StatusCodeName(StatusCode code);

/// A lightweight success/error value. Cheap to copy in the OK case (no
/// allocation); carries a message otherwise.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

}  // namespace surfer

/// Propagates a non-OK Status from an expression to the caller.
#define SURFER_RETURN_IF_ERROR(expr)            \
  do {                                          \
    ::surfer::Status _surfer_status__ = (expr); \
    if (!_surfer_status__.ok()) {               \
      return _surfer_status__;                  \
    }                                           \
  } while (false)

#endif  // SURFER_COMMON_STATUS_H_
