#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace surfer {

void Histogram::Add(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  sum_squares_ += value * value;
  ++buckets_[BucketFor(value)];
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  sum_squares_ += other.sum_squares_;
  for (const auto& [bucket, n] : other.buckets_) {
    buckets_[bucket] += n;
  }
}

void Histogram::Clear() {
  count_ = 0;
  sum_ = 0.0;
  sum_squares_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
  buckets_.clear();
}

double Histogram::StdDev() const {
  if (count_ < 2) {
    return 0.0;
  }
  const double mean = Mean();
  const double variance =
      std::max(0.0, sum_squares_ / count_ - mean * mean);
  return std::sqrt(variance);
}

size_t Histogram::BucketFor(double value) {
  if (value <= 0.0) {
    return 0;
  }
  int exp = 0;
  std::frexp(value, &exp);
  // frexp exponent of 2^-64 is -63; clamp into [0, 127].
  const long bucket = static_cast<long>(exp) + 64;
  return static_cast<size_t>(std::clamp<long>(bucket, 0, 127));
}

double Histogram::BucketLowerBound(size_t bucket) {
  if (bucket == 0) {
    return 0.0;
  }
  return std::ldexp(1.0, static_cast<int>(bucket) - 64);
}

double Histogram::Percentile(double p) const {
  if (count_ == 0) {
    return 0.0;
  }
  p = std::clamp(p, 0.0, 100.0);
  const double target = p / 100.0 * static_cast<double>(count_);
  double seen = 0.0;
  for (const auto& [bucket, n] : buckets_) {
    seen += static_cast<double>(n);
    if (seen >= target) {
      // Interpolate within the bucket against its midpoint; clamp to range.
      const double lo = BucketLowerBound(bucket);
      const double hi = BucketLowerBound(bucket + 1);
      const double mid = (lo + hi) / 2.0;
      return std::clamp(mid, min_, max_);
    }
  }
  return max_;
}

std::string Histogram::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "count=%zu mean=%.4g p50=%.4g p99=%.4g min=%.4g max=%.4g",
                count_, Mean(), Percentile(50), Percentile(99), min(), max());
  return buf;
}

void FrequencyCounter::Merge(const FrequencyCounter& other) {
  for (const auto& [key, n] : other.counts_) {
    counts_[key] += n;
  }
}

uint64_t FrequencyCounter::Get(uint64_t key) const {
  auto it = counts_.find(key);
  return it == counts_.end() ? 0 : it->second;
}

uint64_t FrequencyCounter::total() const {
  uint64_t sum = 0;
  for (const auto& [key, n] : counts_) {
    (void)key;
    sum += n;
  }
  return sum;
}

std::vector<std::pair<uint64_t, uint64_t>> FrequencyCounter::Sorted() const {
  return {counts_.begin(), counts_.end()};
}

}  // namespace surfer
