#ifndef SURFER_COMMON_THREAD_POOL_H_
#define SURFER_COMMON_THREAD_POOL_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "common/histogram.h"

namespace surfer {

/// Point-in-time execution statistics of a ThreadPool; snapshot via
/// ThreadPool::stats(). Latencies are wall-clock (the pool only affects how
/// fast experiments run, never simulated time), so these feed the obs layer
/// rather than any cost model.
struct ThreadPoolStats {
  uint64_t tasks_submitted = 0;
  uint64_t tasks_completed = 0;
  size_t queue_depth = 0;          ///< tasks currently waiting
  size_t max_queue_depth = 0;      ///< high-water mark since construction
  Histogram queue_wait_seconds;    ///< submit -> start latency
  Histogram task_run_seconds;      ///< start -> finish latency
};

/// A fixed-size worker pool used to execute per-partition tasks in parallel.
/// Simulated *time* never depends on the pool — wall-clock parallelism only
/// speeds up the experiments; all timing is computed by the cost model.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (>= 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  /// Pops one queued task (if any) and runs it on the *calling* thread.
  /// Returns false when the queue was empty. This is what lets a thread
  /// that must block on a subset of tasks (see TaskGroup::Wait) help drain
  /// the pool instead of idling — and is the reason nested waits cannot
  /// deadlock even when every worker is itself inside a wait.
  bool TryRunOneTask();

  size_t num_threads() const { return threads_.size(); }

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  /// Work is chunked to limit queueing overhead for large n.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Copies the pool's execution statistics (thread-safe).
  ThreadPoolStats stats() const;

 private:
  struct PendingTask {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued;
  };

  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::queue<PendingTask> queue_;
  std::vector<std::thread> threads_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
  ThreadPoolStats stats_;
};

/// Returns a process-wide pool sized to the hardware concurrency.
ThreadPool& GlobalThreadPool();

/// Tracks completion of one *set* of tasks submitted to a shared ThreadPool,
/// unlike ThreadPool::Wait which waits for the whole pool. A null pool runs
/// every submitted task inline on the calling thread, so sequential and
/// parallel callers share one code path (the partitioner's num_threads = 0
/// mode relies on this: inline execution reproduces the exact depth-first
/// order of the pre-parallel code).
///
/// Wait() is help-first: while the group's tasks are outstanding the waiting
/// thread executes *any* queued pool task. Tasks may therefore submit nested
/// groups and wait on them from inside a worker without deadlock.
class TaskGroup {
 public:
  /// `pool` is not owned and may be null (inline mode).
  explicit TaskGroup(ThreadPool* pool) : pool_(pool) {}
  ~TaskGroup() { Wait(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Runs `fn` inline (null pool) or enqueues it on the pool.
  void Submit(std::function<void()> fn);

  /// Blocks until every task submitted to *this group* has finished,
  /// executing queued pool tasks while it waits.
  void Wait();

 private:
  ThreadPool* pool_;
  std::mutex mu_;
  std::condition_variable done_;
  size_t outstanding_ = 0;
};

/// Deterministic chunked parallel-for: splits [0, n) into fixed ranges of at
/// least `grain` indices (independent of how many threads actually run) and
/// calls fn(begin, end) for each, blocking until all complete. A null pool,
/// n <= grain, or a single-thread pool runs fn(0, n) inline. Because the
/// chunk boundaries depend only on (n, grain, pool size), a caller whose
/// chunks write disjoint state produces bit-identical results at any level
/// of actual concurrency.
void ParallelForChunked(ThreadPool* pool, size_t n, size_t grain,
                        const std::function<void(size_t, size_t)>& fn);

}  // namespace surfer

#endif  // SURFER_COMMON_THREAD_POOL_H_
