#ifndef SURFER_COMMON_LOG_CAPTURE_H_
#define SURFER_COMMON_LOG_CAPTURE_H_

#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace surfer {

/// Captures SURFER_LOG output for the lifetime of the object (tests assert
/// on log lines instead of scraping stderr). Installs itself as the process
/// log sink and restores the previous sink — and the previous minimum log
/// level — on destruction. Not reentrant: nest captures LIFO only.
class ScopedLogCapture {
 public:
  /// `capture_level` temporarily lowers the process log level so the lines
  /// under test are not filtered before they reach the capture.
  explicit ScopedLogCapture(LogLevel capture_level = LogLevel::kDebug)
      : previous_level_(GetLogLevel()) {
    SetLogLevel(capture_level);
    previous_sink_ = SetLogSink([this](LogLevel level, const std::string& line) {
      std::lock_guard<std::mutex> lock(mu_);
      entries_.emplace_back(level, line);
    });
  }

  ~ScopedLogCapture() {
    SetLogSink(std::move(previous_sink_));
    SetLogLevel(previous_level_);
  }

  ScopedLogCapture(const ScopedLogCapture&) = delete;
  ScopedLogCapture& operator=(const ScopedLogCapture&) = delete;

  std::vector<std::string> lines() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto& [level, line] : entries_) {
      out.push_back(line);
    }
    return out;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
  }

  /// True when any captured line contains `needle`.
  bool Contains(std::string_view needle) const {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [level, line] : entries_) {
      if (line.find(needle) != std::string::npos) {
        return true;
      }
    }
    return false;
  }

  /// Number of captured lines at exactly `level`.
  size_t CountAtLevel(LogLevel level) const {
    std::lock_guard<std::mutex> lock(mu_);
    size_t n = 0;
    for (const auto& [entry_level, line] : entries_) {
      n += entry_level == level ? 1 : 0;
    }
    return n;
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::pair<LogLevel, std::string>> entries_;
  LogLevel previous_level_;
  LogSink previous_sink_;
};

}  // namespace surfer

#endif  // SURFER_COMMON_LOG_CAPTURE_H_
