#ifndef SURFER_COMMON_RANDOM_H_
#define SURFER_COMMON_RANDOM_H_

#include <cstdint>
#include <limits>

namespace surfer {

/// Mixes a base seed with a stream index (tree node, recursion depth,
/// shard id, ...) into a decorrelated derived seed via the SplitMix64
/// finalizer. Use this instead of additive/multiplicative schemes like
/// `seed + depth * 7919`: nearby (seed, stream) pairs under those schemes
/// land in nearby PRNG states and produce visibly correlated shuffles,
/// while the finalizer's avalanche makes every derived seed independent.
inline uint64_t MixSeed(uint64_t seed, uint64_t stream) {
  uint64_t z = seed + (stream + 1) * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Deterministic, fast PRNG (xoshiro256**), seeded via SplitMix64. Every
/// randomized component in Surfer (generators, partitioners, schedulers)
/// takes an explicit seed so experiments are reproducible bit-for-bit.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5u) { Seed(seed); }

  /// Re-seeds the generator; identical seeds yield identical streams.
  void Seed(uint64_t seed) {
    // SplitMix64 to spread the seed across the 256-bit state.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound) {
    // Lemire's unbiased multiply-shift rejection method.
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t lo = static_cast<uint64_t>(m);
    if (lo < bound) {
      uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = Next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  // UniformRandomBitGenerator interface, for std::shuffle et al.
  using result_type = uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<uint64_t>::max();
  }
  result_type operator()() { return Next(); }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4] = {};
};

}  // namespace surfer

#endif  // SURFER_COMMON_RANDOM_H_
