#ifndef SURFER_COMMON_UNITS_H_
#define SURFER_COMMON_UNITS_H_

#include <cstdint>
#include <string>

namespace surfer {

inline constexpr double kKiB = 1024.0;
inline constexpr double kMiB = 1024.0 * 1024.0;
inline constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;

inline constexpr double kKilobit = 1000.0;
inline constexpr double kMegabit = 1000.0 * 1000.0;
inline constexpr double kGigabit = 1000.0 * 1000.0 * 1000.0;

/// Converts a link speed in bits/second to bytes/second.
constexpr double BitsPerSecToBytesPerSec(double bits_per_sec) {
  return bits_per_sec / 8.0;
}

/// Formats a byte count as a short human-readable string ("1.5 GiB").
std::string FormatBytes(double bytes);

/// Formats a duration in seconds as "1234.5 s" or "2.3 h" for large values.
std::string FormatSeconds(double seconds);

/// Formats a rate in bytes/second ("120.0 MiB/s").
std::string FormatRate(double bytes_per_sec);

}  // namespace surfer

#endif  // SURFER_COMMON_UNITS_H_
