#include "common/logging.h"

#include <atomic>
#include <cstring>
#include <mutex>
#include <utility>

namespace surfer {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarning)};

std::mutex& SinkMutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

LogSink& SinkStorage() {
  static LogSink* sink = new LogSink();
  return *sink;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}
}  // namespace

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogSink SetLogSink(LogSink sink) {
  std::lock_guard<std::mutex> lock(SinkMutex());
  LogSink previous = std::move(SinkStorage());
  SinkStorage() = std::move(sink);
  return previous;
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  LogSink sink;
  {
    std::lock_guard<std::mutex> lock(SinkMutex());
    sink = SinkStorage();
  }
  if (sink) {
    sink(level_, stream_.str());
  } else {
    std::cerr << stream_.str() << "\n";
  }
  if (level_ == LogLevel::kFatal) {
    std::cerr.flush();
    std::abort();
  }
}

}  // namespace internal
}  // namespace surfer
