#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace surfer {

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& t : threads_) {
    t.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push(PendingTask{std::move(task), std::chrono::steady_clock::now()});
    ++in_flight_;
    ++stats_.tasks_submitted;
    stats_.queue_depth = queue_.size();
    stats_.max_queue_depth = std::max(stats_.max_queue_depth, queue_.size());
  }
  work_available_.notify_one();
}

ThreadPoolStats ThreadPool::stats() const {
  std::unique_lock<std::mutex> lock(mu_);
  return stats_;
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) {
    return;
  }
  if (n == 1 || threads_.size() == 1) {
    for (size_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }
  const size_t num_chunks = std::min(n, threads_.size() * 4);
  const size_t chunk = (n + num_chunks - 1) / num_chunks;
  std::atomic<size_t> next{0};
  for (size_t c = 0; c < num_chunks; ++c) {
    Submit([&, chunk, n] {
      for (;;) {
        const size_t begin = next.fetch_add(chunk);
        if (begin >= n) {
          break;
        }
        const size_t end = std::min(n, begin + chunk);
        for (size_t i = begin; i < end; ++i) {
          fn(i);
        }
      }
    });
  }
  Wait();
}

bool ThreadPool::TryRunOneTask() {
  using Clock = std::chrono::steady_clock;
  PendingTask task;
  Clock::time_point started;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (queue_.empty()) {
      return false;
    }
    task = std::move(queue_.front());
    queue_.pop();
    stats_.queue_depth = queue_.size();
    started = Clock::now();
    stats_.queue_wait_seconds.Add(
        std::chrono::duration<double>(started - task.enqueued).count());
  }
  task.fn();
  {
    std::unique_lock<std::mutex> lock(mu_);
    stats_.task_run_seconds.Add(
        std::chrono::duration<double>(Clock::now() - started).count());
    ++stats_.tasks_completed;
    if (--in_flight_ == 0) {
      all_done_.notify_all();
    }
  }
  return true;
}

void ThreadPool::WorkerLoop() {
  using Clock = std::chrono::steady_clock;
  for (;;) {
    PendingTask task;
    Clock::time_point started;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock,
                           [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // shutting down
      }
      task = std::move(queue_.front());
      queue_.pop();
      stats_.queue_depth = queue_.size();
      started = Clock::now();
      stats_.queue_wait_seconds.Add(
          std::chrono::duration<double>(started - task.enqueued).count());
    }
    task.fn();
    {
      std::unique_lock<std::mutex> lock(mu_);
      stats_.task_run_seconds.Add(
          std::chrono::duration<double>(Clock::now() - started).count());
      ++stats_.tasks_completed;
      if (--in_flight_ == 0) {
        all_done_.notify_all();
      }
    }
  }
}

void TaskGroup::Submit(std::function<void()> fn) {
  if (pool_ == nullptr) {
    fn();
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    ++outstanding_;
  }
  pool_->Submit([this, fn = std::move(fn)] {
    fn();
    std::unique_lock<std::mutex> lock(mu_);
    if (--outstanding_ == 0) {
      done_.notify_all();
    }
  });
}

void TaskGroup::Wait() {
  if (pool_ == nullptr) {
    return;  // inline mode: every task already ran in Submit
  }
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (outstanding_ == 0) {
        return;
      }
    }
    if (pool_->TryRunOneTask()) {
      continue;
    }
    // Queue empty but group tasks still running on other threads. A running
    // task may submit more work to the pool, which our predicate cannot see,
    // so wake periodically to re-check the queue rather than parking until
    // the group drains.
    std::unique_lock<std::mutex> lock(mu_);
    done_.wait_for(lock, std::chrono::milliseconds(1),
                   [this] { return outstanding_ == 0; });
  }
}

void ParallelForChunked(ThreadPool* pool, size_t n, size_t grain,
                        const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) {
    return;
  }
  grain = std::max<size_t>(1, grain);
  if (pool == nullptr || pool->num_threads() <= 1 || n <= grain) {
    fn(0, n);
    return;
  }
  const size_t max_chunks = (n + grain - 1) / grain;
  const size_t num_chunks = std::min(max_chunks, pool->num_threads() * 4);
  const size_t chunk = (n + num_chunks - 1) / num_chunks;
  TaskGroup group(pool);
  for (size_t begin = 0; begin < n; begin += chunk) {
    const size_t end = std::min(n, begin + chunk);
    group.Submit([&fn, begin, end] { fn(begin, end); });
  }
  group.Wait();
}

ThreadPool& GlobalThreadPool() {
  static ThreadPool pool(std::max(1u, std::thread::hardware_concurrency()));
  return pool;
}

}  // namespace surfer
