#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace surfer {

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& t : threads_) {
    t.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) {
    return;
  }
  if (n == 1 || threads_.size() == 1) {
    for (size_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }
  const size_t num_chunks = std::min(n, threads_.size() * 4);
  const size_t chunk = (n + num_chunks - 1) / num_chunks;
  std::atomic<size_t> next{0};
  for (size_t c = 0; c < num_chunks; ++c) {
    Submit([&, chunk, n] {
      for (;;) {
        const size_t begin = next.fetch_add(chunk);
        if (begin >= n) {
          break;
        }
        const size_t end = std::min(n, begin + chunk);
        for (size_t i = begin; i < end; ++i) {
          fn(i);
        }
      }
    });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock,
                           [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // shutting down
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) {
        all_done_.notify_all();
      }
    }
  }
}

ThreadPool& GlobalThreadPool() {
  static ThreadPool pool(std::max(1u, std::thread::hardware_concurrency()));
  return pool;
}

}  // namespace surfer
