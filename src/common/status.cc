#include "common/status.h"

namespace surfer {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotSupported:
      return "NotSupported";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string result(StatusCodeName(code_));
  result += ": ";
  result += message_;
  return result;
}

}  // namespace surfer
