#ifndef SURFER_COMMON_LOGGING_H_
#define SURFER_COMMON_LOGGING_H_

#include <cstdlib>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>

namespace surfer {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Process-wide minimum level below which log statements are dropped.
/// Defaults to kWarning so library consumers are not spammed; benches and
/// examples raise verbosity explicitly.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

/// Receives one fully formatted log line ("[LEVEL file:line] message", no
/// trailing newline). Sinks must be callable from any thread.
using LogSink = std::function<void(LogLevel level, const std::string& line)>;

/// Installs a process-wide sink that replaces the default stderr output;
/// returns the previously installed sink (empty for the stderr default).
/// Passing an empty sink restores stderr. FATAL messages still abort after
/// the sink runs.
LogSink SetLogSink(LogSink sink);

namespace internal {

/// Stream-style log sink; flushes one line on destruction. FATAL aborts.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when the level is disabled.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace surfer

#define SURFER_LOG_ENABLED(level) \
  (::surfer::LogLevel::level >= ::surfer::GetLogLevel())

#define SURFER_LOG(level)                                                 \
  if (!SURFER_LOG_ENABLED(level)) {                                       \
  } else                                                                  \
    ::surfer::internal::LogMessage(::surfer::LogLevel::level, __FILE__,   \
                                   __LINE__)                              \
        .stream()

#define SURFER_CHECK(condition)                                              \
  if (condition) {                                                           \
  } else                                                                     \
    ::surfer::internal::LogMessage(::surfer::LogLevel::kFatal, __FILE__,     \
                                   __LINE__)                                 \
        .stream()                                                            \
        << "Check failed: " #condition " "

#define SURFER_CHECK_OK(expr)                                             \
  do {                                                                    \
    ::surfer::Status _surfer_check_status__ = (expr);                     \
    SURFER_CHECK(_surfer_check_status__.ok())                             \
        << _surfer_check_status__.ToString();                             \
  } while (false)

#define SURFER_DCHECK(condition) SURFER_CHECK(condition)

#endif  // SURFER_COMMON_LOGGING_H_
