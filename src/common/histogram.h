#ifndef SURFER_COMMON_HISTOGRAM_H_
#define SURFER_COMMON_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace surfer {

/// Streaming summary statistics over doubles: count/min/max/mean/stddev and
/// approximate percentiles via a coarse log-scale histogram. Used by the
/// metrics layer for task times and I/O sizes.
class Histogram {
 public:
  Histogram() = default;

  void Add(double value);
  void Merge(const Histogram& other);
  void Clear();

  size_t count() const { return count_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double sum() const { return sum_; }
  double Mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }
  double StdDev() const;

  /// Approximate p-th percentile, p in [0, 100].
  double Percentile(double p) const;
  double Median() const { return Percentile(50.0); }

  /// One-line summary ("count=12 mean=3.4 p50=3.1 p99=9.0 max=9.4").
  std::string ToString() const;

 private:
  static size_t BucketFor(double value);
  static double BucketLowerBound(size_t bucket);

  size_t count_ = 0;
  double sum_ = 0.0;
  double sum_squares_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  // Log2-scale buckets: bucket i covers [2^(i-64), 2^(i-63)).
  std::map<size_t, size_t> buckets_;
};

/// A plain integer-keyed frequency counter; used for degree distributions.
class FrequencyCounter {
 public:
  void Add(uint64_t key, uint64_t delta = 1) { counts_[key] += delta; }
  void Merge(const FrequencyCounter& other);

  uint64_t Get(uint64_t key) const;
  size_t distinct() const { return counts_.size(); }
  uint64_t total() const;

  /// (key, count) pairs in ascending key order.
  std::vector<std::pair<uint64_t, uint64_t>> Sorted() const;

  const std::map<uint64_t, uint64_t>& counts() const { return counts_; }

 private:
  std::map<uint64_t, uint64_t> counts_;
};

}  // namespace surfer

#endif  // SURFER_COMMON_HISTOGRAM_H_
