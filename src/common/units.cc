#include "common/units.h"

#include <cstdio>

namespace surfer {

std::string FormatBytes(double bytes) {
  char buf[64];
  if (bytes >= kGiB) {
    std::snprintf(buf, sizeof(buf), "%.2f GiB", bytes / kGiB);
  } else if (bytes >= kMiB) {
    std::snprintf(buf, sizeof(buf), "%.2f MiB", bytes / kMiB);
  } else if (bytes >= kKiB) {
    std::snprintf(buf, sizeof(buf), "%.2f KiB", bytes / kKiB);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f B", bytes);
  }
  return buf;
}

std::string FormatSeconds(double seconds) {
  char buf[64];
  if (seconds >= 3600.0) {
    std::snprintf(buf, sizeof(buf), "%.2f h", seconds / 3600.0);
  } else if (seconds >= 60.0) {
    std::snprintf(buf, sizeof(buf), "%.1f min", seconds / 60.0);
  } else if (seconds >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2f s", seconds);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f ms", seconds * 1e3);
  }
  return buf;
}

std::string FormatRate(double bytes_per_sec) {
  return FormatBytes(bytes_per_sec) + "/s";
}

}  // namespace surfer
