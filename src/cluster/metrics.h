#ifndef SURFER_CLUSTER_METRICS_H_
#define SURFER_CLUSTER_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "graph/types.h"

namespace surfer {

/// A (time, value) series with fixed-width buckets; used for the disk-I/O
/// rate plots of Figure 10. Adding a span smears bytes uniformly across the
/// buckets it overlaps.
class TimeSeries {
 public:
  explicit TimeSeries(double bucket_seconds = 1.0)
      : bucket_seconds_(bucket_seconds) {}

  /// Adds `amount` spread uniformly over [begin_s, end_s).
  void AddSpan(double begin_s, double end_s, double amount);

  /// Value accumulated in the bucket covering time t.
  double ValueAt(double t) const;

  double bucket_seconds() const { return bucket_seconds_; }
  size_t num_buckets() const { return buckets_.size(); }
  const std::vector<double>& buckets() const { return buckets_; }

  /// Per-second rate series: bucket value / bucket width.
  std::vector<double> Rates() const;

  void Clear() { buckets_.clear(); }

 private:
  double bucket_seconds_;
  std::vector<double> buckets_;
};

/// Aggregate costs of one bulk-synchronous stage.
struct StageMetrics {
  std::string name;
  double duration_s = 0.0;            ///< makespan (max over machines)
  double busy_machine_seconds = 0.0;  ///< sum over machines
  double network_bytes = 0.0;
  double disk_read_bytes = 0.0;
  double disk_write_bytes = 0.0;
  size_t num_tasks = 0;
  size_t num_reexecuted_tasks = 0;  ///< tasks re-run due to failures

  std::string ToString() const;
};

/// Full-run metrics: the paper's four reported quantities (response time,
/// total machine time, network I/O, disk I/O) plus per-stage breakdown and
/// the disk-rate timeline.
struct RunMetrics {
  double response_time_s = 0.0;       ///< sum of stage makespans
  double total_machine_time_s = 0.0;  ///< sum of per-machine busy time
  double network_bytes = 0.0;
  double disk_bytes = 0.0;  ///< read + write
  std::vector<StageMetrics> stages;
  TimeSeries disk_rate{1.0};
  Histogram task_seconds;

  void Accumulate(const StageMetrics& stage);
  std::string Summary() const;
};

}  // namespace surfer

#endif  // SURFER_CLUSTER_METRICS_H_
