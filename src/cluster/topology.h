#ifndef SURFER_CLUSTER_TOPOLOGY_H_
#define SURFER_CLUSTER_TOPOLOGY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "cluster/machine.h"
#include "graph/types.h"

namespace surfer {

/// The network environments evaluated in the paper (Section 6.1):
///  - T1: a flat pod — every machine pair has full bandwidth.
///  - T2(#pod, #level): tree topology. Cross-pod pairs are throttled by the
///    switch they cross: the paper's defaults are a 16x slowdown on a
///    second-level switch and 32x on the top-level switch.
///  - T3: heterogeneous hardware — a random half of the machines has NICs at
///    half bandwidth; a pair's bandwidth is the min of its endpoints'.
enum class TopologyKind {
  kT1,
  kT2,
  kT3,
};

/// Parameters for building a simulated cluster topology.
struct TopologyOptions {
  TopologyKind kind = TopologyKind::kT1;
  uint32_t num_machines = 32;
  /// T2 only: number of pods (must divide num_machines).
  uint32_t num_pods = 2;
  /// T2 only: number of switch levels above the pod switches (1 or 2).
  uint32_t num_levels = 1;
  /// T2 only: slowdown factor for pairs crossing a second-level switch
  /// (pods in the same group). Figure 9 sweeps this from 2x to 128x.
  double second_level_factor = 16.0;
  /// T2 only: slowdown factor for pairs crossing the top-level switch
  /// (pods in different groups; only exists when num_levels == 2).
  double top_level_factor = 32.0;
  /// T3 only: bandwidth ratio of the LOW half (paper: one half).
  double low_bandwidth_ratio = 0.5;
  /// T3 only: seed for choosing the LOW half "randomly from the pod".
  uint64_t seed = 7;
  /// Per-machine hardware defaults.
  Machine machine_template;
};

/// An immutable machine set plus a pairwise bandwidth matrix.
class Topology {
 public:
  /// Builds a topology; validates pod divisibility and level counts.
  static Result<Topology> Make(const TopologyOptions& options);

  /// Convenience constructors matching the paper's notation.
  static Topology T1(uint32_t num_machines);
  static Topology T2(uint32_t num_machines, uint32_t num_pods,
                     uint32_t num_levels, double second_level_factor = 16.0,
                     double top_level_factor = 32.0);
  static Topology T3(uint32_t num_machines, double low_ratio = 0.5,
                     uint64_t seed = 7);

  uint32_t num_machines() const {
    return static_cast<uint32_t>(machines_.size());
  }
  const Machine& machine(MachineId m) const { return machines_[m]; }
  const std::vector<Machine>& machines() const { return machines_; }

  /// Bandwidth between two machines in bytes/second; a machine's bandwidth
  /// to itself is treated as (effectively) infinite — local traffic is free.
  double Bandwidth(MachineId a, MachineId b) const {
    return bandwidth_[a * num_machines() + b];
  }

  /// Sum of pairwise bandwidths between the two (disjoint) machine sets —
  /// the "aggregated bandwidth" of Section 4.2.
  double AggregatedBandwidth(const std::vector<MachineId>& set_a,
                             const std::vector<MachineId>& set_b) const;

  /// True when all machine pairs have identical bandwidth (T1).
  bool IsUniform() const;

  /// Largest bandwidth between two *distinct* machines — the reference
  /// width runtime channel planning scales other links against. Zero for a
  /// single-machine topology.
  double MaxPairBandwidth() const;

  TopologyKind kind() const { return options_.kind; }
  const TopologyOptions& options() const { return options_; }

  /// "T1", "T2(4,2)", "T3" — the paper's notation.
  std::string Name() const;

 private:
  Topology() = default;

  TopologyOptions options_;
  std::vector<Machine> machines_;
  std::vector<double> bandwidth_;  // row-major num_machines^2
};

}  // namespace surfer

#endif  // SURFER_CLUSTER_TOPOLOGY_H_
