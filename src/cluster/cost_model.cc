#include "cluster/cost_model.h"

#include <cmath>

namespace surfer {

double TaskCost::TotalNetworkBytes() const {
  double total = 0.0;
  for (const auto& [dst, bytes] : network_out) {
    (void)dst;
    total += bytes;
  }
  return total;
}

void TaskCost::AddNetwork(MachineId dst, double bytes) {
  if (bytes <= 0.0) {
    return;
  }
  for (auto& [existing_dst, existing_bytes] : network_out) {
    if (existing_dst == dst) {
      existing_bytes += bytes;
      return;
    }
  }
  network_out.emplace_back(dst, bytes);
}

void TaskCost::MergeFrom(const TaskCost& other) {
  disk_read_bytes += other.disk_read_bytes;
  disk_write_bytes += other.disk_write_bytes;
  cpu_bytes += other.cpu_bytes;
  network_in_bytes += other.network_in_bytes;
  random_io = random_io || other.random_io;
  for (const auto& [dst, bytes] : other.network_out) {
    AddNetwork(dst, bytes);
  }
}

double CostModel::DiskSeconds(MachineId machine, const TaskCost& cost) const {
  const Machine& m = topology_->machine(machine);
  double bw = m.disk_bytes_per_sec;
  if (cost.random_io) {
    bw /= params_.random_io_penalty;
  }
  return (cost.disk_read_bytes + cost.disk_write_bytes) / bw;
}

double CostModel::TaskSeconds(MachineId machine, const TaskCost& cost) const {
  double seconds = params_.task_overhead_s;
  seconds += DiskSeconds(machine, cost);
  seconds += cost.cpu_bytes / params_.cpu_bytes_per_sec;
  if (cost.network_in_bytes > 0.0) {
    seconds +=
        cost.network_in_bytes / topology_->machine(machine).nic_bytes_per_sec;
  }
  for (const auto& [dst, bytes] : cost.network_out) {
    if (dst == machine) {
      continue;  // local delivery is free
    }
    const double bw = topology_->Bandwidth(machine, dst);
    if (std::isfinite(bw) && bw > 0.0) {
      seconds += bytes / bw;
    }
  }
  return seconds;
}

}  // namespace surfer
