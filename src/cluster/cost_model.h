#ifndef SURFER_CLUSTER_COST_MODEL_H_
#define SURFER_CLUSTER_COST_MODEL_H_

#include <cstdint>
#include <vector>

#include "cluster/topology.h"
#include "graph/types.h"

namespace surfer {

/// Tunable constants converting byte counts into simulated seconds.
/// The *ratios* between topologies and optimization levels — the quantities
/// the paper reports — are insensitive to the absolute values here.
struct CostParameters {
  /// CPU throughput of a task scanning/processing bytes (per machine).
  double cpu_bytes_per_sec = 400e6;
  /// Fixed per-task overhead (scheduling, process startup).
  double task_overhead_s = 0.05;
  /// Multiplier on disk bandwidth for random (non-sequential) access, the
  /// penalty P2 warns about when partitions outgrow main memory.
  double random_io_penalty = 8.0;
};

/// The resource demands of one task, produced by the propagation/MapReduce
/// runners and priced by the cost model.
struct TaskCost {
  double disk_read_bytes = 0.0;
  double disk_write_bytes = 0.0;
  double cpu_bytes = 0.0;
  /// Bytes this task receives over the network; serialized through the
  /// executing machine's NIC (reduce tasks and Combine tasks gather from
  /// many senders — the receive side is a real bottleneck).
  double network_in_bytes = 0.0;
  /// True when the task's working set exceeds machine memory and disk access
  /// degrades to random I/O (P2).
  bool random_io = false;
  /// Bytes this task sends to each remote machine (destination, bytes).
  std::vector<std::pair<MachineId, double>> network_out;

  double TotalNetworkBytes() const;
  void AddNetwork(MachineId dst, double bytes);
  void MergeFrom(const TaskCost& other);
};

/// Prices task costs on a given topology.
class CostModel {
 public:
  CostModel(const Topology* topology, CostParameters params)
      : topology_(topology), params_(params) {}

  /// Seconds for `machine` to execute a task with cost `cost`: disk time +
  /// CPU time + serialized network send time (each destination priced at the
  /// pairwise bandwidth; local destinations are free).
  double TaskSeconds(MachineId machine, const TaskCost& cost) const;

  /// Disk-only seconds (used to place the disk-rate timeline within a task).
  double DiskSeconds(MachineId machine, const TaskCost& cost) const;

  const CostParameters& params() const { return params_; }
  const Topology& topology() const { return *topology_; }

 private:
  const Topology* topology_;
  CostParameters params_;
};

}  // namespace surfer

#endif  // SURFER_CLUSTER_COST_MODEL_H_
