#include "cluster/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/units.h"

namespace surfer {

void TimeSeries::AddSpan(double begin_s, double end_s, double amount) {
  if (end_s <= begin_s || amount <= 0.0 || bucket_seconds_ <= 0.0) {
    return;
  }
  const size_t first = static_cast<size_t>(begin_s / bucket_seconds_);
  const size_t last = static_cast<size_t>(
      std::ceil(end_s / bucket_seconds_));
  if (last > buckets_.size()) {
    buckets_.resize(last, 0.0);
  }
  const double rate = amount / (end_s - begin_s);
  for (size_t b = first; b < last; ++b) {
    const double bucket_begin = static_cast<double>(b) * bucket_seconds_;
    const double bucket_end = bucket_begin + bucket_seconds_;
    const double overlap = std::min(end_s, bucket_end) -
                           std::max(begin_s, bucket_begin);
    if (overlap > 0.0) {
      buckets_[b] += rate * overlap;
    }
  }
}

double TimeSeries::ValueAt(double t) const {
  if (t < 0.0 || bucket_seconds_ <= 0.0) {
    return 0.0;
  }
  const size_t b = static_cast<size_t>(t / bucket_seconds_);
  return b < buckets_.size() ? buckets_[b] : 0.0;
}

std::vector<double> TimeSeries::Rates() const {
  std::vector<double> rates(buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    rates[i] = buckets_[i] / bucket_seconds_;
  }
  return rates;
}

std::string StageMetrics::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%-16s dur=%s busy=%s net=%s disk=%s tasks=%zu%s",
                name.c_str(), FormatSeconds(duration_s).c_str(),
                FormatSeconds(busy_machine_seconds).c_str(),
                FormatBytes(network_bytes).c_str(),
                FormatBytes(disk_read_bytes + disk_write_bytes).c_str(),
                num_tasks,
                num_reexecuted_tasks > 0 ? " (with re-execution)" : "");
  return buf;
}

void RunMetrics::Accumulate(const StageMetrics& stage) {
  response_time_s += stage.duration_s;
  total_machine_time_s += stage.busy_machine_seconds;
  network_bytes += stage.network_bytes;
  disk_bytes += stage.disk_read_bytes + stage.disk_write_bytes;
  stages.push_back(stage);
}

std::string RunMetrics::Summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "response=%s total_machine=%s network=%s disk=%s stages=%zu",
                FormatSeconds(response_time_s).c_str(),
                FormatSeconds(total_machine_time_s).c_str(),
                FormatBytes(network_bytes).c_str(),
                FormatBytes(disk_bytes).c_str(), stages.size());
  return buf;
}

}  // namespace surfer
