#ifndef SURFER_CLUSTER_MACHINE_H_
#define SURFER_CLUSTER_MACHINE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.h"

namespace surfer {

/// One simulated commodity machine in the cloud. Defaults mirror the paper's
/// testbed: Quad Xeon, 8 GB RAM, 1 Gb Ethernet, SATA disks.
struct Machine {
  MachineId id = 0;
  /// Pod (rack) index in the tree topology; machines in the same pod share a
  /// pod switch and get full NIC bandwidth to each other.
  uint32_t pod = 0;
  /// Pod group index for two-level trees (crossing groups crosses the
  /// top-level switch). Equal to `pod` in one-level trees.
  uint32_t pod_group = 0;
  /// NIC bandwidth in bytes/second (1 Gb/s default).
  double nic_bytes_per_sec = 1e9 / 8.0;
  /// Sequential disk bandwidth in bytes/second (~100 MB/s SATA).
  double disk_bytes_per_sec = 100e6;
  /// Usable main memory in bytes (8 GB default). Determines the number of
  /// partitions P = 2^ceil(log2(||G|| / r)) per Section 4.2.
  uint64_t memory_bytes = 8ULL << 30;
};

/// First machine in `candidates` that `alive` reports as up; kInvalidMachine
/// when every candidate is down (the job is unrecoverable). Candidates equal
/// to kInvalidMachine or outside the alive vector are skipped. This is the
/// Appendix-B recovery rule — "re-execute from the next replica holder" —
/// shared by the replicated placement, the job simulator's task routing, and
/// the concurrent runtime's stage re-assignment.
inline MachineId FirstAliveMachine(std::span<const MachineId> candidates,
                                   const std::vector<uint8_t>& alive) {
  for (MachineId m : candidates) {
    if (m != kInvalidMachine && m < alive.size() && alive[m]) {
      return m;
    }
  }
  return kInvalidMachine;
}

}  // namespace surfer

#endif  // SURFER_CLUSTER_MACHINE_H_
