#include "cluster/topology.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <numeric>

#include "common/logging.h"
#include "common/random.h"

namespace surfer {

namespace {
// Self-bandwidth stand-in: local traffic costs nothing in the network model.
constexpr double kLocalBandwidth = std::numeric_limits<double>::infinity();
}  // namespace

Result<Topology> Topology::Make(const TopologyOptions& options) {
  if (options.num_machines == 0) {
    return Status::InvalidArgument("topology needs at least one machine");
  }
  Topology topo;
  topo.options_ = options;
  topo.machines_.resize(options.num_machines, options.machine_template);
  const uint32_t n = options.num_machines;

  switch (options.kind) {
    case TopologyKind::kT1: {
      for (uint32_t i = 0; i < n; ++i) {
        topo.machines_[i].id = i;
        topo.machines_[i].pod = 0;
        topo.machines_[i].pod_group = 0;
      }
      break;
    }
    case TopologyKind::kT2: {
      if (options.num_pods == 0 || n % options.num_pods != 0) {
        return Status::InvalidArgument(
            "num_pods must divide num_machines for T2");
      }
      if (options.num_levels < 1 || options.num_levels > 2) {
        return Status::InvalidArgument("T2 supports 1 or 2 switch levels");
      }
      if (options.num_levels == 2 && options.num_pods % 2 != 0) {
        return Status::InvalidArgument(
            "two-level T2 needs an even number of pods");
      }
      const uint32_t per_pod = n / options.num_pods;
      for (uint32_t i = 0; i < n; ++i) {
        topo.machines_[i].id = i;
        topo.machines_[i].pod = i / per_pod;
        // With two levels, pods are split into two groups under the
        // top-level switch (Figure 5's T2(4,2)); a one-level tree has no
        // top-level switch, so every pod shares group 0 and cross-pod pairs
        // are throttled only by the second-level factor. This matches the
        // ordering of Table 1: T2(2,1) < T2(4,1) < T2(4,2).
        topo.machines_[i].pod_group =
            options.num_levels == 2
                ? topo.machines_[i].pod / (options.num_pods / 2)
                : 0;
      }
      break;
    }
    case TopologyKind::kT3: {
      if (options.low_bandwidth_ratio <= 0.0 ||
          options.low_bandwidth_ratio > 1.0) {
        return Status::InvalidArgument(
            "low_bandwidth_ratio must be in (0, 1]");
      }
      // Randomly choose half the machines to be the LOW set (Appendix F.1).
      std::vector<uint32_t> order(n);
      std::iota(order.begin(), order.end(), 0);
      Rng rng(options.seed);
      std::shuffle(order.begin(), order.end(), rng);
      for (uint32_t i = 0; i < n; ++i) {
        topo.machines_[order[i]].id = order[i];
        topo.machines_[order[i]].pod = 0;
        topo.machines_[order[i]].pod_group = 0;
        if (i < n / 2) {
          topo.machines_[order[i]].nic_bytes_per_sec *=
              options.low_bandwidth_ratio;
        }
      }
      break;
    }
  }

  // Fill the pairwise bandwidth matrix.
  topo.bandwidth_.assign(static_cast<size_t>(n) * n, 0.0);
  for (uint32_t a = 0; a < n; ++a) {
    for (uint32_t b = 0; b < n; ++b) {
      double bw;
      if (a == b) {
        bw = kLocalBandwidth;
      } else {
        const Machine& ma = topo.machines_[a];
        const Machine& mb = topo.machines_[b];
        bw = std::min(ma.nic_bytes_per_sec, mb.nic_bytes_per_sec);
        if (options.kind == TopologyKind::kT2) {
          if (ma.pod_group != mb.pod_group) {
            bw /= options.top_level_factor;
          } else if (ma.pod != mb.pod) {
            bw /= options.second_level_factor;
          }
        }
      }
      topo.bandwidth_[static_cast<size_t>(a) * n + b] = bw;
    }
  }
  return topo;
}

Topology Topology::T1(uint32_t num_machines) {
  TopologyOptions opt;
  opt.kind = TopologyKind::kT1;
  opt.num_machines = num_machines;
  auto result = Make(opt);
  SURFER_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

Topology Topology::T2(uint32_t num_machines, uint32_t num_pods,
                      uint32_t num_levels, double second_level_factor,
                      double top_level_factor) {
  TopologyOptions opt;
  opt.kind = TopologyKind::kT2;
  opt.num_machines = num_machines;
  opt.num_pods = num_pods;
  opt.num_levels = num_levels;
  opt.second_level_factor = second_level_factor;
  opt.top_level_factor = top_level_factor;
  auto result = Make(opt);
  SURFER_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

Topology Topology::T3(uint32_t num_machines, double low_ratio, uint64_t seed) {
  TopologyOptions opt;
  opt.kind = TopologyKind::kT3;
  opt.num_machines = num_machines;
  opt.low_bandwidth_ratio = low_ratio;
  opt.seed = seed;
  auto result = Make(opt);
  SURFER_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

double Topology::AggregatedBandwidth(const std::vector<MachineId>& set_a,
                                     const std::vector<MachineId>& set_b) const {
  double total = 0.0;
  for (MachineId a : set_a) {
    for (MachineId b : set_b) {
      if (a != b) {
        total += Bandwidth(a, b);
      }
    }
  }
  return total;
}

bool Topology::IsUniform() const {
  const uint32_t n = num_machines();
  if (n < 2) {
    return true;
  }
  const double first = Bandwidth(0, 1);
  for (uint32_t a = 0; a < n; ++a) {
    for (uint32_t b = 0; b < n; ++b) {
      if (a != b && Bandwidth(a, b) != first) {
        return false;
      }
    }
  }
  return true;
}

double Topology::MaxPairBandwidth() const {
  const uint32_t n = num_machines();
  double best = 0.0;
  for (uint32_t a = 0; a < n; ++a) {
    for (uint32_t b = a + 1; b < n; ++b) {
      best = std::max(best, Bandwidth(a, b));
    }
  }
  return best;
}

std::string Topology::Name() const {
  switch (options_.kind) {
    case TopologyKind::kT1:
      return "T1";
    case TopologyKind::kT2: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "T2(%u,%u)", options_.num_pods,
                    options_.num_levels);
      return buf;
    }
    case TopologyKind::kT3:
      return "T3";
  }
  return "?";
}

}  // namespace surfer
