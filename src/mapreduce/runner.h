#ifndef SURFER_MAPREDUCE_RUNNER_H_
#define SURFER_MAPREDUCE_RUNNER_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cluster/metrics.h"
#include "cluster/topology.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "engine/job_simulation.h"
#include "mapreduce/mapreduce.h"
#include "storage/partitioned_graph.h"
#include "storage/replication.h"

namespace surfer {

/// Knobs of the home-grown MapReduce runtime.
struct MapReduceOptions {
  /// Capacity of the map-side combiner's in-memory hash table, in entries.
  /// Algorithm 2's rTable combines partial values while it fits in memory;
  /// once full it spills and combining restarts — the standard behaviour of
  /// MapReduce combiner buffers. On the paper's graphs a partition touches
  /// hundreds of millions of distinct targets, far beyond any rTable, so
  /// map-side combining is largely ineffective there; the default window is
  /// chosen to put the scaled-down experiments in that same regime. This is
  /// precisely why map-side combining cannot substitute for propagation's
  /// partition-structured local combination (Section 3.1).
  size_t combiner_window_entries = 256;
};

/// Executes one MapReduce job over a partitioned graph on the simulated
/// cluster. The Map stage runs one task per graph partition on the machine
/// storing it; the Shuffle hash-partitions keys across one reducer per
/// machine — oblivious to the graph partitioning, which is exactly the
/// deficiency Section 3.1 describes; the Reduce stage runs one task per
/// reducer. Outputs are collected per key.
template <typename App>
  requires MapReduceApp<App>
class MapReduceRunner {
 public:
  using Key = typename App::Key;
  using Value = typename App::Value;
  using Output = typename App::Output;

  MapReduceRunner(const PartitionedGraph* graph,
                  const ReplicatedPlacement* placement,
                  const Topology* topology, App app,
                  MapReduceOptions options = {})
      : graph_(graph),
        placement_(placement),
        topology_(topology),
        app_(std::move(app)),
        options_(options) {}

  /// Runs the job on a fresh simulation and returns its metrics.
  Result<RunMetrics> Run(JobSimulationOptions sim_options = {}) {
    JobSimulation sim(topology_, sim_options);
    SURFER_RETURN_IF_ERROR(RunWith(&sim));
    return sim.metrics();
  }

  /// Runs on an externally owned simulation; metrics accumulate into it.
  Status RunWith(JobSimulation* sim) {
    if (graph_ == nullptr || placement_ == nullptr || topology_ == nullptr) {
      return Status::InvalidArgument("runner inputs must be non-null");
    }
    outputs_.clear();
    const uint32_t num_partitions = graph_->num_partitions();
    const uint32_t num_reducers = topology_->num_machines();
    const Graph& encoded = graph_->encoded_graph();

    // ---------------- Map stage ----------------
    // Per map task: buckets of (key, value) pairs per reducer.
    std::vector<std::vector<std::vector<std::pair<Key, Value>>>> buckets(
        num_partitions);
    std::vector<SimTask> map_tasks(num_partitions);

    GlobalThreadPool().ParallelFor(num_partitions, [&](size_t pi) {
      const PartitionId p = static_cast<PartitionId>(pi);
      const PartitionMeta& meta = graph_->partition(p);
      MapEmitter<Key, Value> emitter;
      app_.Map(PartitionView(&encoded, &meta), emitter);

      double emitted_bytes = 0.0;
      for (const auto& [key, value] : emitter.pairs()) {
        emitted_bytes += static_cast<double>(app_.PairBytes(key, value));
      }

      // Optional map-side combiner: merge values per key within the
      // memory-bounded hash window; when the window fills, it spills and
      // combining restarts (Algorithm 2's rTable under a memory cap).
      auto& pairs = emitter.pairs();
      if constexpr (CombinerApp<App>) {
        std::unordered_map<Key, Value> window;
        const size_t capacity =
            std::max<size_t>(1, options_.combiner_window_entries);
        window.reserve(std::min(capacity, pairs.size()));
        std::vector<std::pair<Key, Value>> combined;
        auto flush = [&] {
          for (auto& [key, value] : window) {
            combined.emplace_back(key, std::move(value));
          }
          window.clear();
        };
        for (auto& [key, value] : pairs) {
          auto it = window.find(key);
          if (it != window.end()) {
            it->second = app_.CombineValues(it->second, value);
            continue;
          }
          if (window.size() >= capacity) {
            flush();
          }
          window.emplace(std::move(key), std::move(value));
        }
        flush();
        pairs = std::move(combined);
        // Keep shuffle order deterministic after the unordered passes.
        std::stable_sort(
            pairs.begin(), pairs.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
      }

      // Hash shuffle: key -> reducer, oblivious to graph partitions.
      buckets[p].resize(num_reducers);
      std::vector<double> bucket_bytes(num_reducers, 0.0);
      for (auto& [key, value] : pairs) {
        const uint32_t r =
            static_cast<uint32_t>(std::hash<Key>{}(key) % num_reducers);
        bucket_bytes[r] += static_cast<double>(app_.PairBytes(key, value));
        buckets[p][r].emplace_back(std::move(key), std::move(value));
      }

      SimTask& task = map_tasks[p];
      task.kind = SimTaskKind::kMap;
      task.partition = p;
      for (MachineId m : placement_->replicas[p]) {
        if (m != kInvalidMachine) {
          task.candidate_machines.push_back(m);
        }
      }
      const MachineId my_machine = placement_->primary(p);
      TaskCost& cost = task.cost;
      cost.disk_read_bytes = static_cast<double>(meta.stored_bytes);
      if constexpr (StatefulMapApp<App>) {
        cost.disk_read_bytes += static_cast<double>(
            app_.MapExtraReadBytes(PartitionView(&encoded, &meta)));
      }
      cost.cpu_bytes = static_cast<double>(meta.stored_bytes) + emitted_bytes;
      for (uint32_t r = 0; r < num_reducers; ++r) {
        if (bucket_bytes[r] <= 0.0) {
          continue;
        }
        // Map output is fully spilled to local disk (the GFS-backed
        // map-output files of Appendix A.1) before reducers pull it.
        cost.disk_write_bytes += bucket_bytes[r];
        if (r != my_machine) {
          cost.AddNetwork(r, bucket_bytes[r]);
        }
      }
    });

    SURFER_RETURN_IF_ERROR(
        sim->RunStage("map", std::move(map_tasks)).status());

    // ---------------- Shuffle delivery + Reduce stage ----------------
    std::vector<std::vector<std::pair<Key, Value>>> reducer_input(
        num_reducers);
    std::vector<double> reducer_bytes(num_reducers, 0.0);
    std::vector<double> reducer_remote_bytes(num_reducers, 0.0);
    for (PartitionId p = 0; p < num_partitions; ++p) {
      const MachineId map_machine = placement_->primary(p);
      for (uint32_t r = 0; r < num_reducers; ++r) {
        for (auto& [key, value] : buckets[p][r]) {
          const double bytes =
              static_cast<double>(app_.PairBytes(key, value));
          reducer_bytes[r] += bytes;
          if (map_machine != r) {
            reducer_remote_bytes[r] += bytes;
          }
          reducer_input[r].emplace_back(std::move(key), std::move(value));
        }
      }
      buckets[p].clear();
      buckets[p].shrink_to_fit();
    }

    std::vector<SimTask> reduce_tasks(num_reducers);
    std::vector<std::vector<std::pair<Key, Output>>> reducer_outputs(
        num_reducers);

    GlobalThreadPool().ParallelFor(num_reducers, [&](size_t ri) {
      const uint32_t r = static_cast<uint32_t>(ri);
      auto& input = reducer_input[r];
      std::stable_sort(input.begin(), input.end(),
                       [](const auto& a, const auto& b) {
                         return a.first < b.first;
                       });
      double output_bytes = 0.0;
      std::vector<Value> values;
      size_t i = 0;
      while (i < input.size()) {
        const Key key = input[i].first;
        values.clear();
        while (i < input.size() && !(key < input[i].first)) {
          values.push_back(std::move(input[i].second));
          ++i;
        }
        Output output = app_.Reduce(key, values);
        output_bytes += static_cast<double>(app_.OutputBytes(output));
        reducer_outputs[r].emplace_back(key, std::move(output));
      }

      SimTask& task = reduce_tasks[r];
      task.kind = SimTaskKind::kReduce;
      // Reducers prefer their own machine; any machine can take over after a
      // failure (inputs are re-shuffled, priced via recovery_refetch_bytes).
      for (uint32_t m = 0; m < topology_->num_machines(); ++m) {
        task.candidate_machines.push_back(
            (r + m) % topology_->num_machines());
      }
      TaskCost& cost = task.cost;
      // Received pairs are pulled over the network, spilled, sorted
      // (read + write), then reduced.
      cost.network_in_bytes = reducer_remote_bytes[r];
      cost.disk_write_bytes = reducer_bytes[r] + output_bytes;
      cost.disk_read_bytes = 2.0 * reducer_bytes[r];
      cost.cpu_bytes = 2.0 * reducer_bytes[r] + output_bytes;
      task.recovery_refetch_bytes = reducer_bytes[r];
    });

    SURFER_RETURN_IF_ERROR(
        sim->RunStage("reduce", std::move(reduce_tasks)).status());

    for (auto& outputs : reducer_outputs) {
      for (auto& [key, output] : outputs) {
        outputs_.insert_or_assign(std::move(key), std::move(output));
      }
    }
    return Status::OK();
  }

  /// Job outputs keyed by reduce key.
  const std::map<Key, Output>& outputs() const { return outputs_; }

 private:
  const PartitionedGraph* graph_;
  const ReplicatedPlacement* placement_;
  const Topology* topology_;
  App app_;
  MapReduceOptions options_;
  std::map<Key, Output> outputs_;
};

}  // namespace surfer

#endif  // SURFER_MAPREDUCE_RUNNER_H_
