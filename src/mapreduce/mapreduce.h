#ifndef SURFER_MAPREDUCE_MAPREDUCE_H_
#define SURFER_MAPREDUCE_MAPREDUCE_H_

#include <concepts>
#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"
#include "storage/partitioned_graph.h"

namespace surfer {

/// Read-only view of one graph partition handed to a map task: the paper's
/// home-grown MapReduce "provides the map function with a graph partition as
/// input, in order to exploit the data locality within the graph partition"
/// (Section 3.1).
class PartitionView {
 public:
  PartitionView(const Graph* encoded, const PartitionMeta* meta)
      : encoded_(encoded), meta_(meta) {}

  PartitionId id() const { return meta_->id; }
  VertexId begin() const { return meta_->begin; }
  VertexId end() const { return meta_->end; }
  VertexId num_vertices() const { return meta_->num_vertices(); }
  size_t OutDegree(VertexId v) const { return encoded_->OutDegree(v); }
  std::span<const VertexId> OutNeighbors(VertexId v) const {
    return encoded_->OutNeighbors(v);
  }
  const PartitionMeta& meta() const { return *meta_; }

 private:
  const Graph* encoded_;
  const PartitionMeta* meta_;
};

/// Collects (key, value) pairs from a map task.
template <typename Key, typename Value>
class MapEmitter {
 public:
  void Emit(Key key, Value value) {
    pairs_.emplace_back(std::move(key), std::move(value));
  }
  std::vector<std::pair<Key, Value>>& pairs() { return pairs_; }

 private:
  std::vector<std::pair<Key, Value>> pairs_;
};

/// The MapReduce application interface (Appendix A.1). An app provides:
///   using Key, Value, Output;
///   void Map(const PartitionView&, MapEmitter<Key, Value>&) const;
///   Output Reduce(const Key&, std::vector<Value>&) const;
///   size_t PairBytes(const Key&, const Value&) const;
///   size_t OutputBytes(const Output&) const;
/// Optionally:
///   Value CombineValues(const Value&, const Value&) const — a map-side
///   combiner merging values per key before the shuffle.
template <typename App>
concept MapReduceApp = requires(
    const App app, PartitionView view,
    MapEmitter<typename App::Key, typename App::Value> emitter,
    typename App::Key key, std::vector<typename App::Value> values) {
  typename App::Key;
  typename App::Value;
  typename App::Output;
  app.Map(view, emitter);
  { app.Reduce(key, values) } -> std::same_as<typename App::Output>;
  { app.PairBytes(key, values[0]) } -> std::convertible_to<size_t>;
};

/// Detected when the app supplies a map-side combiner.
template <typename App>
concept CombinerApp = requires(const App app, const typename App::Value v) {
  { app.CombineValues(v, v) } -> std::same_as<typename App::Value>;
};

/// Detected when the app's map reads per-vertex state alongside the graph
/// partition (iterative jobs like PageRank read the rank file); the returned
/// byte count is charged to the map task's disk reads.
template <typename App>
concept StatefulMapApp = requires(const App app, PartitionView view) {
  { app.MapExtraReadBytes(view) } -> std::convertible_to<size_t>;
};

}  // namespace surfer

#endif  // SURFER_MAPREDUCE_MAPREDUCE_H_
