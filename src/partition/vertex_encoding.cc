#include "partition/vertex_encoding.h"

#include <algorithm>

#include "graph/graph_builder.h"

namespace surfer {

VertexEncoding VertexEncoding::Create(const Partitioning& partitioning) {
  VertexEncoding enc;
  const VertexId n = static_cast<VertexId>(partitioning.assignment.size());
  const uint32_t p = partitioning.num_partitions;

  std::vector<VertexId> sizes(p, 0);
  for (VertexId v = 0; v < n; ++v) {
    ++sizes[partitioning.assignment[v]];
  }
  enc.starts_.assign(p + 1, 0);
  for (uint32_t i = 0; i < p; ++i) {
    enc.starts_[i + 1] = enc.starts_[i] + sizes[i];
  }
  enc.to_encoded_.resize(n);
  enc.to_original_.resize(n);
  std::vector<VertexId> cursor(enc.starts_.begin(), enc.starts_.end() - 1);
  for (VertexId v = 0; v < n; ++v) {
    const VertexId encoded = cursor[partitioning.assignment[v]]++;
    enc.to_encoded_[v] = encoded;
    enc.to_original_[encoded] = v;
  }
  return enc;
}

Result<VertexEncoding> VertexEncoding::FromMapping(
    std::vector<VertexId> to_original, std::vector<VertexId> starts) {
  const VertexId n = static_cast<VertexId>(to_original.size());
  if (starts.empty() || starts.front() != 0 || starts.back() != n) {
    return Status::InvalidArgument("starts must tile [0, num_vertices]");
  }
  if (!std::is_sorted(starts.begin(), starts.end())) {
    return Status::InvalidArgument("starts must be non-decreasing");
  }
  VertexEncoding enc;
  enc.to_original_ = std::move(to_original);
  enc.starts_ = std::move(starts);
  enc.to_encoded_.assign(n, kInvalidVertex);
  for (VertexId encoded = 0; encoded < n; ++encoded) {
    const VertexId original = enc.to_original_[encoded];
    if (original >= n || enc.to_encoded_[original] != kInvalidVertex) {
      return Status::Corruption("to_original is not a permutation");
    }
    enc.to_encoded_[original] = encoded;
  }
  return enc;
}

PartitionId VertexEncoding::PartitionOf(VertexId encoded) const {
  const auto it =
      std::upper_bound(starts_.begin(), starts_.end(), encoded);
  return static_cast<PartitionId>(it - starts_.begin()) - 1;
}

Graph VertexEncoding::Reencode(const Graph& graph) const {
  const VertexId n = graph.num_vertices();
  std::vector<EdgeIndex> offsets(n + 1, 0);
  for (VertexId encoded = 0; encoded < n; ++encoded) {
    offsets[encoded + 1] =
        offsets[encoded] + graph.OutDegree(to_original_[encoded]);
  }
  std::vector<VertexId> neighbors(graph.num_edges());
  EdgeIndex write = 0;
  for (VertexId encoded = 0; encoded < n; ++encoded) {
    const VertexId original = to_original_[encoded];
    const EdgeIndex begin = write;
    for (VertexId nbr : graph.OutNeighbors(original)) {
      neighbors[write++] = to_encoded_[nbr];
    }
    std::sort(neighbors.begin() + begin, neighbors.begin() + write);
  }
  return Graph(std::move(offsets), std::move(neighbors));
}

}  // namespace surfer
