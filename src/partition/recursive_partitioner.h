#ifndef SURFER_PARTITION_RECURSIVE_PARTITIONER_H_
#define SURFER_PARTITION_RECURSIVE_PARTITIONER_H_

#include <cstdint>

#include "common/result.h"
#include "graph/graph.h"
#include "partition/bisection.h"
#include "partition/partition_sketch.h"
#include "partition/partitioning.h"

namespace surfer {

namespace obs {
class MetricsRegistry;
class Tracer;
}  // namespace obs

/// Options for the P-way multilevel recursive-bisection partitioner (the
/// algorithm family of Metis/ParMetis, Appendix A.2).
struct RecursivePartitionerOptions {
  /// Number of partitions; must be a power of two (the partition sketch is a
  /// balanced binary tree).
  uint32_t num_partitions = 16;
  BisectionOptions bisection;
  /// Worker threads for the partitioner. 0 preserves the original fully
  /// sequential path (no pool is created); any value >= 1 runs the bisection
  /// tree task-parallel — after a node's bisection its two subtrees become
  /// independent pool tasks — plus intra-bisection parallelism on large
  /// nodes. Every thread count, including 0, produces a bit-identical
  /// assignment and sketch: per-node seeds make each subtree's result
  /// independent of execution order, and all concurrent writes land in
  /// disjoint ranges (see DESIGN.md Section 10). `bisection.pool` is
  /// overridden per node and need not be set by callers.
  uint32_t num_threads = 0;
  /// Optional observability hooks (not owned; may be null). The tracer gets
  /// one wall-clock span per bisection (category "partition", args level /
  /// vertices / cut); the registry gets partition_* counters, per-level
  /// partition_edge_cut gauges, and partition_bisection_seconds histograms.
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
};

/// The result: the assignment plus the partition sketch annotated with the
/// cut weight of every bisection.
struct RecursivePartitionResult {
  Partitioning partitioning;
  PartitionSketch sketch;
};

/// Partitions `graph` into P parts by recursive multilevel bisection,
/// balancing stored record bytes. Partition IDs follow sketch order: the
/// leaves of the bisection tree left to right, so sibling partitions have
/// adjacent IDs — the property the bandwidth-aware placement exploits.
Result<RecursivePartitionResult> RecursivePartition(
    const Graph& graph, const RecursivePartitionerOptions& options);

}  // namespace surfer

#endif  // SURFER_PARTITION_RECURSIVE_PARTITIONER_H_
