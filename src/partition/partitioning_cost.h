#ifndef SURFER_PARTITION_PARTITIONING_COST_H_
#define SURFER_PARTITION_PARTITIONING_COST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/topology.h"
#include "common/result.h"
#include "graph/types.h"

namespace surfer {

/// Analytical elapsed-time model of *distributed* multilevel partitioning
/// (Table 1). The recursion mirrors Algorithm 4: at level l, machine groups
/// each bisect their subgraph. A bisection over machine group M on S bytes:
///   - compute: S * cpu_work_factor / (|M| * cpu_bytes_per_sec)
///   - disk: S * disk_passes / (|M| * disk bandwidth)
///   - network: `exchange_rounds` all-to-all rounds; each machine moves
///     S/|M| bytes per round against its average bandwidth to group peers —
///     the level's time is the slowest machine of the slowest group.
/// After machines are exhausted, the per-machine local phase partitions
/// S/|M_total| bytes into the remaining 2^(L - l) parts.
///
/// The only difference between the two compared policies is which machines
/// form each group: the bandwidth-aware policy groups by the machine-graph
/// bisection (pods stay together; Section 4.2), while the ParMetis-like
/// policy groups randomly ("randomly chooses the available machine",
/// Section 6.2). On T1 the two are identical, as in the paper.
struct PartitioningCostParameters {
  /// CPU work per input byte per bisection level (coarsen + refine passes).
  double cpu_work_factor = 5.0;
  double cpu_bytes_per_sec = 400e6;
  /// Graph read + intermediate write per level.
  double disk_passes = 3.0;
  double disk_bytes_per_sec = 100e6;
  /// All-to-all data exchange rounds per bisection level (coarsening
  /// iterations plus the projection/refinement exchange).
  double exchange_rounds = 2.0;
  /// Overall work multiplier: the multilevel algorithm makes many passes
  /// per level (coarsening iterations, refinement sweeps); this constant
  /// absorbs them so absolute times land in the paper's regime (ParMetis
  /// needs 27.1 h for the 100 GB graph on T1). Relative comparisons are
  /// unaffected by it.
  double work_scale = 87.0;
  uint64_t seed = 11;
};

enum class MachineGroupingPolicy {
  kBandwidthAware,  ///< groups follow the machine-graph bisection
  kRandom,          ///< ParMetis-like, bandwidth-oblivious
};

struct PartitioningCostBreakdown {
  double total_seconds = 0.0;
  double network_seconds = 0.0;
  double compute_seconds = 0.0;
  double disk_seconds = 0.0;
  double local_phase_seconds = 0.0;
  std::vector<double> level_seconds;

  std::string ToString() const;
};

/// Estimates the elapsed time of partitioning `graph_bytes` of data into
/// `num_partitions` parts on `topology` under the given grouping policy.
Result<PartitioningCostBreakdown> EstimatePartitioningTime(
    const Topology& topology, size_t graph_bytes, uint32_t num_partitions,
    MachineGroupingPolicy policy,
    const PartitioningCostParameters& params = {});

}  // namespace surfer

#endif  // SURFER_PARTITION_PARTITIONING_COST_H_
