#include "partition/bisection.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <queue>
#include <tuple>

#include "common/logging.h"
#include "common/random.h"
#include "common/thread_pool.h"

namespace surfer {

namespace {

/// Below this many vertices the sharded paths fall back to sequential: the
/// submit/wait overhead dwarfs the work. Purely a performance gate — the
/// parallel paths produce identical output at any size.
constexpr VertexId kIntraParallelMinVertices = 4096;

int64_t CutWeightRange(const WeightedGraph& graph,
                       const std::vector<uint8_t>& side, VertexId begin,
                       VertexId end) {
  int64_t cut = 0;
  for (VertexId u = begin; u < end; ++u) {
    const auto nbrs = graph.Neighbors(u);
    const auto weights = graph.EdgeWeights(u);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      if (side[u] != side[nbrs[i]]) {
        cut += weights[i];
      }
    }
  }
  return cut;
}

}  // namespace

int64_t ComputeCutWeight(const WeightedGraph& graph,
                         const std::vector<uint8_t>& side, ThreadPool* pool) {
  const VertexId n = graph.num_vertices();
  if (pool == nullptr || n < kIntraParallelMinVertices) {
    return CutWeightRange(graph, side, 0, n) / 2;
  }
  // Shard into fixed chunks; each writes its own slot, and the slots sum in
  // chunk order. Integer addition is exact under regrouping, so the total
  // matches the sequential scan bit-for-bit.
  const size_t num_chunks = pool->num_threads() * 4;
  const size_t chunk = (static_cast<size_t>(n) + num_chunks - 1) / num_chunks;
  std::vector<int64_t> partial(num_chunks, 0);
  TaskGroup group(pool);
  size_t slot = 0;
  for (size_t begin = 0; begin < n; begin += chunk, ++slot) {
    const VertexId range_begin = static_cast<VertexId>(begin);
    const VertexId range_end =
        static_cast<VertexId>(std::min<size_t>(n, begin + chunk));
    int64_t* out = &partial[slot];
    group.Submit([&graph, &side, range_begin, range_end, out] {
      *out = CutWeightRange(graph, side, range_begin, range_end);
    });
  }
  group.Wait();
  int64_t cut = 0;
  for (int64_t p : partial) {
    cut += p;
  }
  return cut / 2;  // every undirected edge counted from both endpoints
}

namespace internal {

WeightedGraph CoarsenOnce(const WeightedGraph& graph, uint64_t seed,
                          std::vector<VertexId>* fine_to_coarse,
                          ThreadPool* pool) {
  const VertexId n = graph.num_vertices();
  std::vector<VertexId> match(n, kInvalidVertex);
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), 0);
  Rng rng(seed);
  std::shuffle(order.begin(), order.end(), rng);

  // Heavy-edge matching: each unmatched vertex grabs its heaviest unmatched
  // neighbor.
  for (VertexId u : order) {
    if (match[u] != kInvalidVertex) {
      continue;
    }
    const auto nbrs = graph.Neighbors(u);
    const auto weights = graph.EdgeWeights(u);
    VertexId best = kInvalidVertex;
    int64_t best_weight = -1;
    for (size_t i = 0; i < nbrs.size(); ++i) {
      const VertexId v = nbrs[i];
      if (v != u && match[v] == kInvalidVertex && weights[i] > best_weight) {
        best = v;
        best_weight = weights[i];
      }
    }
    if (best != kInvalidVertex) {
      match[u] = best;
      match[best] = u;
    } else {
      match[u] = u;  // stays single
    }
  }

  // Assign coarse IDs (pair representative = smaller fine ID).
  fine_to_coarse->assign(n, kInvalidVertex);
  VertexId next_coarse = 0;
  for (VertexId v = 0; v < n; ++v) {
    if ((*fine_to_coarse)[v] != kInvalidVertex) {
      continue;
    }
    (*fine_to_coarse)[v] = next_coarse;
    const VertexId mate = match[v];
    if (mate != v && mate != kInvalidVertex) {
      (*fine_to_coarse)[mate] = next_coarse;
    }
    ++next_coarse;
  }

  // Build the coarse graph by accumulating edges per coarse vertex.
  WeightedGraph coarse;
  coarse.vertex_weights.assign(next_coarse, 0);
  for (VertexId v = 0; v < n; ++v) {
    coarse.vertex_weights[(*fine_to_coarse)[v]] += graph.vertex_weights[v];
  }
  // Bucket fine vertices by coarse vertex to merge adjacency lists.
  std::vector<std::vector<VertexId>> members(next_coarse);
  for (VertexId v = 0; v < n; ++v) {
    members[(*fine_to_coarse)[v]].push_back(v);
  }
  coarse.offsets.assign(next_coarse + 1, 0);
  // Merges one coarse vertex's adjacency: accumulate edge weights from all
  // members into `accumulator` (dense, reset after use), emit neighbors in
  // sorted coarse-ID order. Each coarse vertex is independent of the others,
  // which is what the sharded build below exploits.
  auto merge_adjacency = [&graph, &members, fine_to_coarse](
                             VertexId c, std::vector<int64_t>& accumulator,
                             std::vector<VertexId>& touched,
                             std::vector<VertexId>& out_neighbors,
                             std::vector<int64_t>& out_weights) {
    touched.clear();
    for (VertexId v : members[c]) {
      const auto nbrs = graph.Neighbors(v);
      const auto weights = graph.EdgeWeights(v);
      for (size_t i = 0; i < nbrs.size(); ++i) {
        const VertexId cn = (*fine_to_coarse)[nbrs[i]];
        if (cn == c) {
          continue;  // intra-pair edge collapses
        }
        if (accumulator[cn] == 0) {
          touched.push_back(cn);
        }
        accumulator[cn] += weights[i];
      }
    }
    std::sort(touched.begin(), touched.end());
    for (VertexId cn : touched) {
      out_neighbors.push_back(cn);
      out_weights.push_back(accumulator[cn]);
      accumulator[cn] = 0;
    }
  };

  if (pool == nullptr || n < kIntraParallelMinVertices) {
    std::vector<int64_t> accumulator(next_coarse, 0);
    std::vector<VertexId> touched;
    for (VertexId c = 0; c < next_coarse; ++c) {
      merge_adjacency(c, accumulator, touched, coarse.neighbors,
                      coarse.edge_weights);
      coarse.offsets[c + 1] = coarse.neighbors.size();
    }
    return coarse;
  }

  // Sharded build: each chunk of coarse vertices merges into its own buffer
  // (with its own dense accumulator), and buffers concatenate in chunk order
  // afterwards. Chunk boundaries only group the same per-vertex lists, so
  // the stitched CSR is identical to the sequential build.
  struct ChunkBuffer {
    std::vector<VertexId> neighbors;
    std::vector<int64_t> weights;
    std::vector<EdgeIndex> degrees;  // per coarse vertex in the chunk
  };
  const size_t num_chunks =
      std::min<size_t>(pool->num_threads() * 4, next_coarse);
  const VertexId chunk =
      static_cast<VertexId>((next_coarse + num_chunks - 1) / num_chunks);
  std::vector<ChunkBuffer> buffers(num_chunks);
  TaskGroup group(pool);
  for (size_t ci = 0; ci < num_chunks; ++ci) {
    group.Submit([&, ci] {
      const VertexId begin = static_cast<VertexId>(ci) * chunk;
      const VertexId end = std::min<VertexId>(next_coarse, begin + chunk);
      ChunkBuffer& buffer = buffers[ci];
      std::vector<int64_t> accumulator(next_coarse, 0);
      std::vector<VertexId> touched;
      for (VertexId c = begin; c < end; ++c) {
        const size_t before = buffer.neighbors.size();
        merge_adjacency(c, accumulator, touched, buffer.neighbors,
                        buffer.weights);
        buffer.degrees.push_back(buffer.neighbors.size() - before);
      }
    });
  }
  group.Wait();
  size_t total = 0;
  for (const ChunkBuffer& buffer : buffers) {
    total += buffer.neighbors.size();
  }
  coarse.neighbors.reserve(total);
  coarse.edge_weights.reserve(total);
  VertexId c = 0;
  for (const ChunkBuffer& buffer : buffers) {
    coarse.neighbors.insert(coarse.neighbors.end(), buffer.neighbors.begin(),
                            buffer.neighbors.end());
    coarse.edge_weights.insert(coarse.edge_weights.end(),
                               buffer.weights.begin(), buffer.weights.end());
    for (EdgeIndex degree : buffer.degrees) {
      coarse.offsets[c + 1] = coarse.offsets[c] + degree;
      ++c;
    }
  }
  return coarse;
}

namespace {

/// Weight of edges from v into each side, given the current assignment.
struct SideWeights {
  int64_t same = 0;
  int64_t other = 0;
};

SideWeights ComputeSideWeights(const WeightedGraph& graph, VertexId v,
                               const std::vector<uint8_t>& side) {
  SideWeights sw;
  const auto nbrs = graph.Neighbors(v);
  const auto weights = graph.EdgeWeights(v);
  for (size_t i = 0; i < nbrs.size(); ++i) {
    if (side[nbrs[i]] == side[v]) {
      sw.same += weights[i];
    } else {
      sw.other += weights[i];
    }
  }
  return sw;
}

void FillResult(const WeightedGraph& graph, BisectionResult* result,
                ThreadPool* pool) {
  result->cut_weight = ComputeCutWeight(graph, result->side, pool);
  result->side_weight[0] = 0;
  result->side_weight[1] = 0;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    result->side_weight[result->side[v]] += graph.vertex_weights[v];
  }
}

}  // namespace

BisectionResult InitialBisection(const WeightedGraph& graph,
                                 const BisectionOptions& options) {
  const VertexId n = graph.num_vertices();
  BisectionResult best;
  best.cut_weight = std::numeric_limits<int64_t>::max();
  if (n == 0) {
    best.cut_weight = 0;
    return best;
  }
  const int64_t total = graph.TotalVertexWeight();
  const int64_t target = total / 2;
  Rng rng(options.seed);

  const uint32_t trials = std::max<uint32_t>(1, options.gggp_trials);
  for (uint32_t trial = 0; trial < trials; ++trial) {
    std::vector<uint8_t> side(n, 1);  // grow region "0" out of side 1
    const VertexId seed_vertex = static_cast<VertexId>(rng.Uniform(n));
    // gain[v] = (edges into region) - (edges out of region); lazily updated
    // via a max-heap of (gain, v) with stale-entry skipping.
    std::vector<int64_t> gain(n, std::numeric_limits<int64_t>::min());
    std::priority_queue<std::pair<int64_t, VertexId>> frontier;
    int64_t region_weight = 0;
    VertexId first_unassigned = 0;

    auto add_to_region = [&](VertexId v) {
      side[v] = 0;
      region_weight += graph.vertex_weights[v];
      const auto nbrs = graph.Neighbors(v);
      const auto weights = graph.EdgeWeights(v);
      for (size_t i = 0; i < nbrs.size(); ++i) {
        const VertexId u = nbrs[i];
        if (side[u] != 0) {
          // u's pull toward the region grows by 2w (w moves from "out" to
          // "in" as v joined the region).
          if (gain[u] == std::numeric_limits<int64_t>::min()) {
            const SideWeights sw = ComputeSideWeights(graph, u, side);
            // u on side 1: edges to region = sw.other, out = sw.same.
            gain[u] = sw.other - sw.same;
          } else {
            gain[u] += 2 * weights[i];
          }
          frontier.emplace(gain[u], u);
        }
      }
    };

    add_to_region(seed_vertex);
    while (region_weight < target) {
      VertexId pick = kInvalidVertex;
      while (!frontier.empty()) {
        auto [g, v] = frontier.top();
        frontier.pop();
        if (side[v] == 0 || g != gain[v]) {
          continue;  // stale
        }
        pick = v;
        break;
      }
      if (pick == kInvalidVertex) {
        // Disconnected remainder: jump to the first vertex still on side 1.
        // Vertices never leave the region, so the cursor is monotone across
        // picks and the whole trial's rescans cost O(n) total — a fresh scan
        // per pick degraded edgeless graphs to O(n^2).
        while (first_unassigned < n && side[first_unassigned] == 0) {
          ++first_unassigned;
        }
        if (first_unassigned == n) {
          break;
        }
        pick = first_unassigned;
      }
      add_to_region(pick);
    }

    BisectionResult candidate;
    candidate.side = std::move(side);
    FillResult(graph, &candidate, options.pool);
    FmRefine(graph, options, &candidate);
    if (candidate.cut_weight < best.cut_weight ||
        (candidate.cut_weight == best.cut_weight &&
         candidate.Imbalance() < best.Imbalance())) {
      best = std::move(candidate);
    }
  }
  return best;
}

uint32_t FmRefine(const WeightedGraph& graph, const BisectionOptions& options,
                  BisectionResult* result) {
  const VertexId n = graph.num_vertices();
  if (n == 0) {
    return 0;
  }
  const int64_t total = graph.TotalVertexWeight();
  const int64_t max_side = static_cast<int64_t>(
      (1.0 + options.balance_epsilon) * static_cast<double>(total) / 2.0);

  std::vector<uint8_t>& side = result->side;
  uint32_t improving_passes = 0;

  for (uint32_t pass = 0; pass < options.refine_passes; ++pass) {
    // gain[v] = cut reduction from moving v to the other side. Computing the
    // initial gains is the pass's only O(E) scan, and each vertex's gain is
    // independent, so it shards over the pool; the heap is then built from
    // the full entry vector in one shot. A binary heap's pop sequence is a
    // function of its *contents* (every (gain, v) pair is distinct, so the
    // max is unique at each pop), not of its internal layout, so make_heap
    // here and the former one-push-per-vertex loop pop identically.
    std::vector<int64_t> gain(n);
    std::vector<std::pair<int64_t, VertexId>> entries(n);
    std::vector<uint8_t> moved(n, 0);
    ParallelForChunked(n < kIntraParallelMinVertices ? nullptr : options.pool,
                       n, /*grain=*/1024, [&](size_t begin, size_t end) {
                         for (size_t i = begin; i < end; ++i) {
                           const VertexId v = static_cast<VertexId>(i);
                           const SideWeights sw =
                               ComputeSideWeights(graph, v, side);
                           gain[v] = sw.other - sw.same;
                           entries[i] = {gain[v], v};
                         }
                       });
    std::priority_queue<std::pair<int64_t, VertexId>> heap(
        std::less<std::pair<int64_t, VertexId>>(), std::move(entries));

    int64_t side_weight[2] = {result->side_weight[0], result->side_weight[1]};
    int64_t current_cut = result->cut_weight;
    // Prefer feasible (balanced) states; among feasible states, the lowest
    // cut; among infeasible ones, the least imbalanced. This lets a pass
    // repair an infeasible starting point even at the cost of a worse cut.
    auto score = [&](int64_t cut, int64_t w0, int64_t w1) {
      const int64_t heavier = std::max(w0, w1);
      const int64_t overweight = std::max<int64_t>(0, heavier - max_side);
      // Lexicographic: feasibility first, then imbalance, then cut.
      return std::make_tuple(overweight > 0 ? 1 : 0, overweight, cut);
    };
    auto best_score = score(current_cut, side_weight[0], side_weight[1]);
    int64_t moves_to_best = 0;
    std::vector<VertexId> move_sequence;
    move_sequence.reserve(n);

    while (!heap.empty()) {
      auto [g, v] = heap.top();
      heap.pop();
      if (moved[v] || g != gain[v]) {
        continue;
      }
      const uint8_t from = side[v];
      const uint8_t to = 1 - from;
      // Classic FM balance rule: a move may overshoot the budget by at most
      // the moved vertex itself (side already over budget rejects), unless
      // it drains the heavier side.
      if (side_weight[to] > max_side && side_weight[to] >= side_weight[from]) {
        continue;
      }
      moved[v] = 1;
      side[v] = to;
      side_weight[from] -= graph.vertex_weights[v];
      side_weight[to] += graph.vertex_weights[v];
      current_cut -= g;
      move_sequence.push_back(v);
      const auto s = score(current_cut, side_weight[0], side_weight[1]);
      if (s < best_score) {
        best_score = s;
        moves_to_best = static_cast<int64_t>(move_sequence.size());
      }
      // Update neighbor gains.
      const auto nbrs = graph.Neighbors(v);
      const auto weights = graph.EdgeWeights(v);
      for (size_t i = 0; i < nbrs.size(); ++i) {
        const VertexId u = nbrs[i];
        if (moved[u]) {
          continue;
        }
        // v joined u's side: that edge's contribution flips by 2w either way.
        if (side[u] == to) {
          gain[u] -= 2 * weights[i];
        } else {
          gain[u] += 2 * weights[i];
        }
        heap.emplace(gain[u], u);
      }
      // Bound pass length: after n moves everything flipped once.
      if (move_sequence.size() >= n) {
        break;
      }
    }

    // Roll back to the best prefix.
    for (int64_t i = static_cast<int64_t>(move_sequence.size()) - 1;
         i >= moves_to_best; --i) {
      const VertexId v = move_sequence[i];
      side[v] = 1 - side[v];
    }
    FillResult(graph, result, options.pool);
    if (moves_to_best == 0) {
      break;  // pass found no improvement
    }
    ++improving_passes;
  }
  return improving_passes;
}

}  // namespace internal

namespace {

BisectionResult BisectRecursive(const WeightedGraph& graph,
                                const BisectionOptions& options,
                                uint32_t depth) {
  const VertexId n = graph.num_vertices();
  if (n <= options.coarsen_target || depth > 64) {
    return internal::InitialBisection(graph, options);
  }
  std::vector<VertexId> fine_to_coarse;
  const WeightedGraph coarse = internal::CoarsenOnce(
      graph, MixSeed(options.seed, depth), &fine_to_coarse, options.pool);
  if (coarse.num_vertices() >=
      static_cast<VertexId>(0.95 * static_cast<double>(n))) {
    // Matching stalled (e.g. star graphs); stop coarsening here.
    return internal::InitialBisection(graph, options);
  }
  const BisectionResult coarse_result =
      BisectRecursive(coarse, options, depth + 1);

  // Project to the finer graph and refine.
  BisectionResult result;
  result.side.resize(n);
  for (VertexId v = 0; v < n; ++v) {
    result.side[v] = coarse_result.side[fine_to_coarse[v]];
  }
  result.cut_weight = ComputeCutWeight(graph, result.side, options.pool);
  result.side_weight[0] = 0;
  result.side_weight[1] = 0;
  for (VertexId v = 0; v < n; ++v) {
    result.side_weight[result.side[v]] += graph.vertex_weights[v];
  }
  internal::FmRefine(graph, options, &result);
  return result;
}

}  // namespace

BisectionResult Bisect(const WeightedGraph& graph,
                       const BisectionOptions& options) {
  return BisectRecursive(graph, options, 0);
}

}  // namespace surfer
