#include "partition/weighted_graph.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/thread_pool.h"

namespace surfer {

int64_t WeightedGraph::TotalVertexWeight() const {
  return std::accumulate(vertex_weights.begin(), vertex_weights.end(),
                         static_cast<int64_t>(0));
}

int64_t WeightedGraph::WeightedDegree(VertexId v) const {
  int64_t sum = 0;
  for (int64_t w : EdgeWeights(v)) {
    sum += w;
  }
  return sum;
}

WeightedGraph WeightedGraph::FromDataGraph(const Graph& graph,
                                           ThreadPool* pool) {
  const VertexId n = graph.num_vertices();
  // First pass: count symmetrized half-edges per vertex (over-allocate, then
  // compact after merging parallels). The scatter increments to arbitrary
  // endpoints keep this pass and the fill below sequential.
  std::vector<EdgeIndex> degree(n, 0);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v : graph.OutNeighbors(u)) {
      if (u == v) {
        continue;
      }
      ++degree[u];
      ++degree[v];
    }
  }
  std::vector<EdgeIndex> offsets(n + 1, 0);
  for (VertexId v = 0; v < n; ++v) {
    offsets[v + 1] = offsets[v] + degree[v];
  }
  std::vector<VertexId> adj(offsets[n]);
  std::vector<EdgeIndex> cursor(offsets.begin(), offsets.end() - 1);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v : graph.OutNeighbors(u)) {
      if (u == v) {
        continue;
      }
      adj[cursor[u]++] = v;
      adj[cursor[v]++] = u;
    }
  }

  // Second pass, sharded: sort each vertex's slice of `adj` and count its
  // distinct neighbors (slices are disjoint, so chunks never conflict).
  std::vector<EdgeIndex> merged_degree(n, 0);
  ParallelForChunked(pool, n, /*grain=*/2048, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      const VertexId v = static_cast<VertexId>(i);
      std::sort(adj.begin() + offsets[v], adj.begin() + offsets[v + 1]);
      EdgeIndex distinct = 0;
      for (EdgeIndex e = offsets[v]; e < offsets[v + 1];) {
        EdgeIndex j = e;
        while (j < offsets[v + 1] && adj[j] == adj[e]) {
          ++j;
        }
        ++distinct;
        e = j;
      }
      merged_degree[v] = distinct;
    }
  });

  WeightedGraph result;
  result.offsets.assign(n + 1, 0);
  for (VertexId v = 0; v < n; ++v) {
    result.offsets[v + 1] = result.offsets[v] + merged_degree[v];
  }
  result.neighbors.resize(result.offsets[n]);
  result.edge_weights.resize(result.offsets[n]);
  result.vertex_weights.resize(n);
  // Third pass, sharded: emit each vertex's merged run into its
  // preallocated range. Identical content and order to the sequential
  // push_back build, at any pool size.
  ParallelForChunked(pool, n, /*grain=*/2048, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      const VertexId v = static_cast<VertexId>(i);
      EdgeIndex out = result.offsets[v];
      for (EdgeIndex e = offsets[v]; e < offsets[v + 1];) {
        EdgeIndex j = e;
        while (j < offsets[v + 1] && adj[j] == adj[e]) {
          ++j;
        }
        result.neighbors[out] = adj[e];
        result.edge_weights[out] = static_cast<int64_t>(j - e);
        ++out;
        e = j;
      }
      result.vertex_weights[v] =
          static_cast<int64_t>(StoredVertexRecordBytes(graph.OutDegree(v)));
    }
  });
  return result;
}

WeightedGraph WeightedGraph::CompleteFromWeights(
    const std::vector<std::vector<double>>& bandwidth) {
  const VertexId n = static_cast<VertexId>(bandwidth.size());
  WeightedGraph result;
  result.offsets.assign(n + 1, 0);
  result.vertex_weights.assign(n, 1);
  if (n == 0) {
    return result;
  }
  // Scale bandwidths into integer weights preserving ratios.
  double max_bw = 0.0;
  for (VertexId a = 0; a < n; ++a) {
    for (VertexId b = 0; b < n; ++b) {
      if (a != b && std::isfinite(bandwidth[a][b])) {
        max_bw = std::max(max_bw, bandwidth[a][b]);
      }
    }
  }
  const double scale = max_bw > 0.0 ? 1e6 / max_bw : 1.0;
  for (VertexId a = 0; a < n; ++a) {
    for (VertexId b = 0; b < n; ++b) {
      if (a == b) {
        continue;
      }
      result.neighbors.push_back(b);
      result.edge_weights.push_back(std::max<int64_t>(
          1, static_cast<int64_t>(std::llround(bandwidth[a][b] * scale))));
    }
    result.offsets[a + 1] = result.neighbors.size();
  }
  return result;
}

}  // namespace surfer
