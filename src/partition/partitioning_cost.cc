#include "partition/partitioning_cost.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <numeric>

#include "common/random.h"
#include "partition/machine_graph.h"
#include "partition/partition_sketch.h"

namespace surfer {

namespace {

/// Time for one machine group to bisect S bytes: compute + disk + the
/// all-to-all exchange bounded by the slowest member's average bandwidth to
/// its peers.
double GroupBisectionSeconds(const Topology& topology,
                             const std::vector<MachineId>& group,
                             double bytes,
                             const PartitioningCostParameters& params) {
  const double m = static_cast<double>(group.size());
  double seconds = bytes * params.cpu_work_factor /
                   (m * params.cpu_bytes_per_sec);
  seconds += bytes * params.disk_passes / (m * params.disk_bytes_per_sec);
  if (group.size() > 1) {
    // Each machine exchanges its bytes/|M| share with the group at its
    // average pairwise bandwidth. The group finishes in the *mean* of the
    // per-machine times rather than the max: the multilevel bisection is a
    // long pipeline of micro-steps, and machines that finish a step early
    // proceed with local coarsening/refinement work, so slow members
    // overlap rather than serialize with fast ones.
    double mean_exchange = 0.0;
    for (MachineId a : group) {
      double bw_sum = 0.0;
      for (MachineId b : group) {
        if (a != b) {
          bw_sum += topology.Bandwidth(a, b);
        }
      }
      const double avg_bw = bw_sum / (m - 1.0);
      const double per_machine_bytes = bytes / m;
      mean_exchange += params.exchange_rounds * per_machine_bytes / avg_bw;
    }
    seconds += mean_exchange / m;
  }
  return seconds;
}

/// Splits `group` in half randomly (bandwidth-oblivious).
void RandomSplit(const std::vector<MachineId>& group, Rng& rng,
                 std::vector<MachineId>* left,
                 std::vector<MachineId>* right) {
  std::vector<MachineId> shuffled = group;
  std::shuffle(shuffled.begin(), shuffled.end(), rng);
  const size_t half = shuffled.size() / 2;
  left->assign(shuffled.begin(), shuffled.begin() + half);
  right->assign(shuffled.begin() + half, shuffled.end());
}

struct Recursion {
  const Topology* topology;
  const PartitioningCostParameters* params;
  MachineGroupingPolicy policy;
  const BandwidthAwarePlacement* ba_placement;  // set for kBandwidthAware
  Rng rng;
  PartitioningCostBreakdown* out;
  uint32_t num_levels = 0;

  // Group times at each recursion level. The level's elapsed time is the
  // machine-weighted mean over its groups: sibling subtrees and their
  // store/refine phases overlap, so a slow group delays the pipeline in
  // proportion to its share rather than gating everything (the same reason
  // the per-group exchange uses the mean over members).
  std::vector<double> level_time_sum;
  std::vector<double> level_weight_sum;
  double local_phase_max = 0.0;

  void Visit(const std::vector<MachineId>& group, double bytes,
             uint32_t level, uint32_t sketch_node, uint32_t remaining_splits);
};

void Recursion::Visit(const std::vector<MachineId>& group, double bytes,
                      uint32_t level, uint32_t sketch_node,
                      uint32_t remaining_splits) {
  if (remaining_splits == 0) {
    return;
  }
  if (group.size() == 1) {
    // Local phase: one machine partitions its share into 2^remaining parts
    // sequentially — remaining_splits passes of in-memory bisection.
    const double local =
        static_cast<double>(remaining_splits) *
        (bytes * params->cpu_work_factor / params->cpu_bytes_per_sec +
         bytes * params->disk_passes / params->disk_bytes_per_sec);
    local_phase_max = std::max(local_phase_max, local);
    return;
  }
  if (level_time_sum.size() <= level) {
    level_time_sum.resize(level + 1, 0.0);
    level_weight_sum.resize(level + 1, 0.0);
  }
  const double weight = static_cast<double>(group.size());
  level_time_sum[level] +=
      weight * GroupBisectionSeconds(*topology, group, bytes, *params);
  level_weight_sum[level] += weight;

  std::vector<MachineId> left;
  std::vector<MachineId> right;
  if (policy == MachineGroupingPolicy::kBandwidthAware &&
      ba_placement != nullptr &&
      PartitionSketch::Left(sketch_node) < ba_placement->node_machines.size() &&
      !ba_placement->node_machines[PartitionSketch::Left(sketch_node)]
           .empty()) {
    left = ba_placement->node_machines[PartitionSketch::Left(sketch_node)];
    right = ba_placement->node_machines[PartitionSketch::Right(sketch_node)];
  } else {
    RandomSplit(group, rng, &left, &right);
  }
  Visit(left, bytes / 2.0, level + 1, PartitionSketch::Left(sketch_node),
        remaining_splits - 1);
  Visit(right, bytes / 2.0, level + 1, PartitionSketch::Right(sketch_node),
        remaining_splits - 1);
}

}  // namespace

Result<PartitioningCostBreakdown> EstimatePartitioningTime(
    const Topology& topology, size_t graph_bytes, uint32_t num_partitions,
    MachineGroupingPolicy policy,
    const PartitioningCostParameters& params) {
  if (num_partitions == 0 || (num_partitions & (num_partitions - 1)) != 0) {
    return Status::InvalidArgument("num_partitions must be a power of two");
  }
  if (topology.num_machines() == 0) {
    return Status::InvalidArgument("empty topology");
  }
  const uint32_t levels =
      static_cast<uint32_t>(std::bit_width(num_partitions)) - 1;

  // For the bandwidth-aware policy, derive the machine groups from the
  // actual machine-graph bisection (the same code the placement uses).
  BandwidthAwarePlacement placement;
  const BandwidthAwarePlacement* placement_ptr = nullptr;
  if (policy == MachineGroupingPolicy::kBandwidthAware && levels > 0) {
    PartitionSketch sketch(num_partitions);
    // The partitioning *process* divides its bisection work over machines
    // evenly (the data shape is still being discovered), so the machine
    // groups here balance by count, not capability.
    BandwidthAwarePlacementOptions options;
    options.capability_weights = false;
    SURFER_ASSIGN_OR_RETURN(
        placement, ComputeBandwidthAwarePlacement(topology, sketch, options));
    placement_ptr = &placement;
  }

  PartitioningCostBreakdown breakdown;
  Recursion rec{&topology, &params, policy, placement_ptr, Rng(params.seed),
                &breakdown};
  rec.num_levels = levels;

  std::vector<MachineId> all(topology.num_machines());
  std::iota(all.begin(), all.end(), 0);
  rec.Visit(all, static_cast<double>(graph_bytes), 0, 1, levels);

  breakdown.level_seconds.resize(rec.level_time_sum.size());
  for (size_t l = 0; l < rec.level_time_sum.size(); ++l) {
    breakdown.level_seconds[l] =
        rec.level_weight_sum[l] > 0.0
            ? rec.level_time_sum[l] / rec.level_weight_sum[l]
            : 0.0;
  }
  for (double& s : breakdown.level_seconds) {
    s *= params.work_scale;
  }
  breakdown.local_phase_seconds = rec.local_phase_max * params.work_scale;
  breakdown.total_seconds =
      std::accumulate(breakdown.level_seconds.begin(),
                      breakdown.level_seconds.end(), 0.0) +
      breakdown.local_phase_seconds;
  return breakdown;
}

std::string PartitioningCostBreakdown::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "total=%.1fs levels=%zu local_phase=%.1fs", total_seconds,
                level_seconds.size(), local_phase_seconds);
  return buf;
}

}  // namespace surfer
