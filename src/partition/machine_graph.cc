#include "partition/machine_graph.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"
#include "common/random.h"

namespace surfer {

WeightedGraph BuildMachineGraph(const Topology& topology,
                                bool capability_weights) {
  const uint32_t n = topology.num_machines();
  std::vector<std::vector<double>> bandwidth(n, std::vector<double>(n, 0.0));
  for (uint32_t a = 0; a < n; ++a) {
    for (uint32_t b = 0; b < n; ++b) {
      if (a != b) {
        bandwidth[a][b] = topology.Bandwidth(a, b);
      }
    }
  }
  WeightedGraph graph = WeightedGraph::CompleteFromWeights(bandwidth);
  // The paper's balance constraint — "two partitions having around the same
  // number of machines" — exists "for load-balancing purpose". On
  // heterogeneous clusters (T3) we generalize it to balancing aggregate NIC
  // capability, so slower machines end up with proportionally fewer data
  // partitions; on homogeneous clusters every weight is equal and this
  // reduces exactly to the paper's machine-count constraint.
  double max_nic = 0.0;
  for (uint32_t m = 0; m < n; ++m) {
    max_nic = std::max(max_nic, topology.machine(m).nic_bytes_per_sec);
  }
  if (capability_weights && max_nic > 0.0) {
    for (uint32_t m = 0; m < n; ++m) {
      graph.vertex_weights[m] = std::max<int64_t>(
          1, static_cast<int64_t>(std::llround(
                 8.0 * topology.machine(m).nic_bytes_per_sec / max_nic)));
    }
  }
  return graph;
}

namespace {

/// Bisects `machines` (IDs into the topology) minimizing cut bandwidth with
/// equal halves. Small n: extract the induced machine subgraph each time.
void BisectMachines(const WeightedGraph& machine_graph,
                    const std::vector<MachineId>& machines,
                    const BisectionOptions& options, uint64_t salt,
                    std::vector<MachineId>* left,
                    std::vector<MachineId>* right) {
  // Build the induced subgraph (complete, so dense extraction is simplest).
  std::vector<VertexId> global_to_local(machine_graph.num_vertices(),
                                        kInvalidVertex);
  for (size_t i = 0; i < machines.size(); ++i) {
    global_to_local[machines[i]] = static_cast<VertexId>(i);
  }
  WeightedGraph sub;
  sub.offsets.assign(machines.size() + 1, 0);
  sub.vertex_weights.resize(machines.size());
  for (size_t i = 0; i < machines.size(); ++i) {
    sub.vertex_weights[i] = machine_graph.vertex_weights[machines[i]];
  }
  for (size_t i = 0; i < machines.size(); ++i) {
    const auto nbrs = machine_graph.Neighbors(machines[i]);
    const auto weights = machine_graph.EdgeWeights(machines[i]);
    for (size_t j = 0; j < nbrs.size(); ++j) {
      const VertexId local = global_to_local[nbrs[j]];
      if (local != kInvalidVertex) {
        sub.neighbors.push_back(local);
        sub.edge_weights.push_back(weights[j]);
      }
    }
    sub.offsets[i + 1] = sub.neighbors.size();
  }

  BisectionOptions opt = options;
  opt.seed = options.seed * 40503ULL + salt;
  const BisectionResult result = Bisect(sub, opt);
  left->clear();
  right->clear();
  for (size_t i = 0; i < machines.size(); ++i) {
    if (result.side[i] == 0) {
      left->push_back(machines[i]);
    } else {
      right->push_back(machines[i]);
    }
  }
  // Safety net for pathological FM outcomes: never leave a side empty, and
  // cap gross *capability* imbalance (the balance target is the weighted
  // one; see BuildMachineGraph). Complete graphs keep this near-optimal.
  auto side_weight = [&](const std::vector<MachineId>& side) {
    int64_t total = 0;
    for (MachineId m : side) {
      total += machine_graph.vertex_weights[m];
    }
    return total;
  };
  while (!left->empty() &&
         (right->empty() ||
          side_weight(*left) >
              2 * side_weight(*right) + machine_graph.vertex_weights[0])) {
    right->push_back(left->back());
    left->pop_back();
  }
  while (!right->empty() &&
         (left->empty() ||
          side_weight(*right) >
              2 * side_weight(*left) + machine_graph.vertex_weights[0])) {
    left->push_back(right->back());
    right->pop_back();
  }
}

/// Picks the machine with maximum aggregated bandwidth to the rest of `set`
/// (Algorithm 4, line 8).
MachineId MaxAggregatedBandwidthMachine(const Topology& topology,
                                        const std::vector<MachineId>& set) {
  MachineId best = set.front();
  double best_bw = -1.0;
  for (MachineId m : set) {
    double bw = 0.0;
    for (MachineId other : set) {
      if (other != m) {
        bw += topology.Bandwidth(m, other);
      }
    }
    if (bw > best_bw) {
      best_bw = bw;
      best = m;
    }
  }
  return best;
}

struct PlacementRecursion {
  const Topology* topology;
  const WeightedGraph* machine_graph;
  const PartitionSketch* sketch;
  const BandwidthAwarePlacementOptions* options;
  BandwidthAwarePlacement* out;
};

void PlaceNode(PlacementRecursion& rec, std::vector<MachineId> machines,
               uint32_t node) {
  rec.out->node_machines[node] = machines;
  const PartitionSketch& sketch = *rec.sketch;
  if (machines.size() == 1) {
    // Single machine: every partition under this node lives here
    // (Algorithm 4, lines 2-5).
    const auto [begin, end] = sketch.LeafRange(node);
    for (PartitionId p = begin; p < end; ++p) {
      rec.out->partition_to_machine[p] = machines.front();
    }
    // Fill descendant node_machines for completeness.
    if (!sketch.IsLeaf(node)) {
      PlaceNode(rec, machines, PartitionSketch::Left(node));
      PlaceNode(rec, {machines}, PartitionSketch::Right(node));
    }
    return;
  }
  if (sketch.IsLeaf(node)) {
    // More machines than partitions below: store on the machine with the
    // maximum aggregated bandwidth (Algorithm 4, lines 7-9).
    const MachineId m = MaxAggregatedBandwidthMachine(*rec.topology, machines);
    rec.out->partition_to_machine[node - sketch.num_partitions()] = m;
    return;
  }
  std::vector<MachineId> left;
  std::vector<MachineId> right;
  BisectMachines(*rec.machine_graph, machines,
                 rec.options->machine_bisection, node, &left, &right);
  PlaceNode(rec, std::move(left), PartitionSketch::Left(node));
  PlaceNode(rec, std::move(right), PartitionSketch::Right(node));
}

}  // namespace

Result<BandwidthAwarePlacement> ComputeBandwidthAwarePlacement(
    const Topology& topology, const PartitionSketch& sketch,
    const BandwidthAwarePlacementOptions& options) {
  if (topology.num_machines() == 0) {
    return Status::InvalidArgument("empty topology");
  }
  BandwidthAwarePlacement placement;
  placement.partition_to_machine.assign(sketch.num_partitions(),
                                        kInvalidMachine);
  placement.node_machines.assign(sketch.num_nodes(), {});

  const WeightedGraph machine_graph =
      BuildMachineGraph(topology, options.capability_weights);
  std::vector<MachineId> all(topology.num_machines());
  std::iota(all.begin(), all.end(), 0);
  PlacementRecursion rec{&topology, &machine_graph, &sketch, &options,
                         &placement};
  PlaceNode(rec, std::move(all), /*node=*/1);

  for (MachineId m : placement.partition_to_machine) {
    SURFER_CHECK(m != kInvalidMachine) << "unplaced partition";
  }
  return placement;
}

std::vector<MachineId> RandomPlacement(uint32_t num_partitions,
                                       const Topology& topology,
                                       uint64_t seed) {
  std::vector<MachineId> machines(topology.num_machines());
  std::iota(machines.begin(), machines.end(), 0);
  Rng rng(seed);
  std::shuffle(machines.begin(), machines.end(), rng);
  std::vector<MachineId> placement(num_partitions);
  for (uint32_t p = 0; p < num_partitions; ++p) {
    placement[p] = machines[p % machines.size()];
  }
  return placement;
}

}  // namespace surfer
