#include "partition/recursive_partitioner.h"

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace surfer {

namespace {

/// Subgraph extraction shards its passes over the pool only above this many
/// member vertices; below it the task overhead exceeds the scan.
constexpr size_t kExtractParallelMinVertices = 4096;

/// Nodes at least this large hand the pool to their bisection for
/// intra-bisection parallelism. Near the top of the tree there are fewer
/// subtree tasks than workers, so the spare threads shard the bisection
/// itself; deeper nodes have enough sibling tasks to fill the pool and skip
/// the sharding overhead. The gate depends only on the subgraph size, never
/// on the thread count, so it cannot perturb determinism.
constexpr size_t kIntraNodeParallelMinVertices = 8192;

/// Reuses full-length global->local scratch maps across subtree tasks so
/// each extraction doesn't allocate (and fault in) num_vertices entries.
/// Maps are returned reset to kInvalidVertex — ExtractSubgraph restores the
/// entries it touched, which is O(|subgraph|), not O(n).
class ScratchMapPool {
 public:
  explicit ScratchMapPool(VertexId num_vertices)
      : num_vertices_(num_vertices) {}

  std::vector<VertexId> Acquire() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!free_.empty()) {
        std::vector<VertexId> map = std::move(free_.back());
        free_.pop_back();
        return map;
      }
    }
    return std::vector<VertexId>(num_vertices_, kInvalidVertex);
  }

  void Release(std::vector<VertexId> map) {
    std::lock_guard<std::mutex> lock(mu_);
    free_.push_back(std::move(map));
  }

 private:
  const VertexId num_vertices_;
  std::mutex mu_;
  std::vector<std::vector<VertexId>> free_;
};

/// Extracts the induced subgraph of `graph` on `vertices` (which must be
/// unique); `vertices[i]` becomes local vertex i. Two-pass CSR build: count
/// each member's surviving degree, prefix-sum, then fill preallocated arrays
/// — no push_back growth, and both passes shard over `pool` because every
/// member writes only its own offset range (content and order match the
/// sequential build exactly).
WeightedGraph ExtractSubgraph(const WeightedGraph& graph,
                              const std::vector<VertexId>& vertices,
                              std::vector<VertexId>* global_to_local_scratch,
                              ThreadPool* pool) {
  std::vector<VertexId>& global_to_local = *global_to_local_scratch;
  if (vertices.size() < kExtractParallelMinVertices) {
    pool = nullptr;
  }
  constexpr size_t kGrain = 2048;
  ParallelForChunked(pool, vertices.size(), kGrain,
                     [&](size_t begin, size_t end) {
                       for (size_t i = begin; i < end; ++i) {
                         global_to_local[vertices[i]] =
                             static_cast<VertexId>(i);
                       }
                     });

  WeightedGraph sub;
  sub.offsets.assign(vertices.size() + 1, 0);
  sub.vertex_weights.resize(vertices.size());
  std::vector<EdgeIndex> local_degree(vertices.size(), 0);
  ParallelForChunked(pool, vertices.size(), kGrain,
                     [&](size_t begin, size_t end) {
                       for (size_t i = begin; i < end; ++i) {
                         EdgeIndex kept = 0;
                         for (VertexId nbr : graph.Neighbors(vertices[i])) {
                           if (global_to_local[nbr] != kInvalidVertex) {
                             ++kept;
                           }
                         }
                         local_degree[i] = kept;
                       }
                     });
  for (size_t i = 0; i < vertices.size(); ++i) {
    sub.offsets[i + 1] = sub.offsets[i] + local_degree[i];
  }
  sub.neighbors.resize(sub.offsets.back());
  sub.edge_weights.resize(sub.offsets.back());
  ParallelForChunked(
      pool, vertices.size(), kGrain, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          const VertexId v = vertices[i];
          sub.vertex_weights[i] = graph.vertex_weights[v];
          const auto nbrs = graph.Neighbors(v);
          const auto weights = graph.EdgeWeights(v);
          EdgeIndex out = sub.offsets[i];
          for (size_t j = 0; j < nbrs.size(); ++j) {
            const VertexId local = global_to_local[nbrs[j]];
            if (local != kInvalidVertex) {
              sub.neighbors[out] = local;
              sub.edge_weights[out] = weights[j];
              ++out;
            }
          }
        }
      });
  // Reset the scratch map for the next extraction.
  ParallelForChunked(pool, vertices.size(), kGrain,
                     [&](size_t begin, size_t end) {
                       for (size_t i = begin; i < end; ++i) {
                         global_to_local[vertices[i]] = kInvalidVertex;
                       }
                     });
  return sub;
}

struct RecursionState {
  const WeightedGraph* working;
  const RecursivePartitionerOptions* options;
  Partitioning* partitioning;
  PartitionSketch* sketch;
  /// Null when num_threads == 0; then `group` runs tasks inline and the
  /// traversal is the exact depth-first order of the sequential partitioner.
  ThreadPool* pool;
  ScratchMapPool* scratch_maps;
  TaskGroup* group;
};

/// Bisects the subgraph on `vertices` for sketch `node`; assigns partition
/// IDs once single-partition nodes are reached, and submits the two child
/// subtrees to the task group.
///
/// Determinism and race-freedom under task parallelism:
///  - The node's seed is MixSeed(base, node), a pure function of the sketch
///    node, and its input subgraph is fixed by the parent's bisection — so
///    every node's result is independent of task execution order.
///  - Concurrent tasks write disjoint state: `assignment[v]` only for the
///    leaf's own vertex set (leaves partition the vertex space), and
///    `SetBisectionCut(node, ...)` exactly once per distinct heap slot.
///    Distinct vector elements make both race-free.
void PartitionNode(RecursionState& state, std::vector<VertexId> vertices,
                   uint32_t node) {
  if (state.sketch->IsLeaf(node)) {
    const PartitionId partition =
        static_cast<PartitionId>(node - state.sketch->num_partitions());
    for (VertexId v : vertices) {
      state.partitioning->assignment[v] = partition;
    }
    return;
  }
  BisectionOptions bisect_options = state.options->bisection;
  bisect_options.seed = MixSeed(state.options->bisection.seed, node);
  bisect_options.pool = vertices.size() >= kIntraNodeParallelMinVertices
                            ? state.pool
                            : nullptr;
  std::vector<VertexId> global_to_local = state.scratch_maps->Acquire();
  const WeightedGraph sub =
      ExtractSubgraph(*state.working, vertices, &global_to_local,
                      bisect_options.pool);
  state.scratch_maps->Release(std::move(global_to_local));
  // The bisection tree level: the root split of node 1 is level 0.
  uint32_t level = 0;
  for (uint32_t n = node; n > 1; n >>= 1) {
    ++level;
  }
  obs::Tracer* tracer = state.options->tracer;
  obs::MetricsRegistry* metrics = state.options->metrics;
  const bool timed = tracer != nullptr || metrics != nullptr;
  const auto wall_start = std::chrono::steady_clock::now();
  const double trace_start_us = tracer != nullptr ? tracer->WallNowUs() : 0.0;
  const BisectionResult result = Bisect(sub, bisect_options);
  const double elapsed_s =
      timed ? std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            wall_start)
                  .count()
            : 0.0;
  state.sketch->SetBisectionCut(node, result.cut_weight);
  if (tracer != nullptr) {
    tracer->RecordComplete(
        obs::TraceClock::kWall, "bisect[node=" + std::to_string(node) + "]",
        "partition", trace_start_us, elapsed_s * 1e6,
        obs::Tracer::CurrentThreadLane(),
        {{"level", std::to_string(level)},
         {"vertices", std::to_string(vertices.size())},
         {"cut", std::to_string(result.cut_weight)}});
  }
  if (metrics != nullptr) {
    const obs::Labels level_label = {{"level", std::to_string(level)}};
    metrics->CounterRef("partition_bisections_total").Increment();
    metrics->GaugeRef("partition_edge_cut", level_label)
        .Add(static_cast<double>(result.cut_weight));
    metrics->HistogramRef("partition_bisection_seconds", level_label)
        .Observe(elapsed_s);
  }

  std::vector<VertexId> left;
  std::vector<VertexId> right;
  left.reserve(vertices.size() / 2 + 1);
  right.reserve(vertices.size() / 2 + 1);
  for (size_t i = 0; i < vertices.size(); ++i) {
    if (result.side[i] == 0) {
      left.push_back(vertices[i]);
    } else {
      right.push_back(vertices[i]);
    }
  }
  vertices.clear();
  vertices.shrink_to_fit();
  RecursionState* shared = &state;
  state.group->Submit([shared, left = std::move(left), node]() mutable {
    PartitionNode(*shared, std::move(left), PartitionSketch::Left(node));
  });
  state.group->Submit([shared, right = std::move(right), node]() mutable {
    PartitionNode(*shared, std::move(right), PartitionSketch::Right(node));
  });
}

}  // namespace

Result<RecursivePartitionResult> RecursivePartition(
    const Graph& graph, const RecursivePartitionerOptions& options) {
  const uint32_t p = options.num_partitions;
  if (p == 0 || (p & (p - 1)) != 0) {
    return Status::InvalidArgument(
        "num_partitions must be a power of two, got " + std::to_string(p));
  }
  if (graph.num_vertices() < p) {
    return Status::InvalidArgument("fewer vertices than partitions");
  }

  RecursivePartitionResult result;
  result.partitioning.num_partitions = p;
  result.partitioning.assignment.assign(graph.num_vertices(), 0);
  result.sketch = PartitionSketch(p);
  if (p == 1) {
    return result;
  }

  std::unique_ptr<ThreadPool> pool;
  if (options.num_threads > 0) {
    pool = std::make_unique<ThreadPool>(options.num_threads);
  }
  const WeightedGraph working =
      WeightedGraph::FromDataGraph(graph, pool.get());
  ScratchMapPool scratch_maps(graph.num_vertices());
  TaskGroup group(pool.get());
  RecursionState state{&working,       &options,  &result.partitioning,
                       &result.sketch, pool.get(), &scratch_maps,
                       &group};
  std::vector<VertexId> all(graph.num_vertices());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    all[v] = v;
  }
  PartitionNode(state, std::move(all), /*node=*/1);
  // Subtree tasks fan out through the group; state outlives them because
  // this wait (helping, so the caller's thread works too) ends the fan-out.
  group.Wait();
  return result;
}

}  // namespace surfer
