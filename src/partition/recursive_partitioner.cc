#include "partition/recursive_partitioner.h"

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace surfer {

namespace {

/// Extracts the induced subgraph of `graph` on `vertices` (which must be
/// sorted or at least unique); `vertices[i]` becomes local vertex i.
WeightedGraph ExtractSubgraph(const WeightedGraph& graph,
                              const std::vector<VertexId>& vertices,
                              std::vector<VertexId>* global_to_local_scratch) {
  std::vector<VertexId>& global_to_local = *global_to_local_scratch;
  for (size_t i = 0; i < vertices.size(); ++i) {
    global_to_local[vertices[i]] = static_cast<VertexId>(i);
  }
  WeightedGraph sub;
  sub.offsets.assign(vertices.size() + 1, 0);
  sub.vertex_weights.resize(vertices.size());
  for (size_t i = 0; i < vertices.size(); ++i) {
    const VertexId v = vertices[i];
    sub.vertex_weights[i] = graph.vertex_weights[v];
    const auto nbrs = graph.Neighbors(v);
    const auto weights = graph.EdgeWeights(v);
    for (size_t j = 0; j < nbrs.size(); ++j) {
      const VertexId local = global_to_local[nbrs[j]];
      if (local != kInvalidVertex) {
        sub.neighbors.push_back(local);
        sub.edge_weights.push_back(weights[j]);
      }
    }
    sub.offsets[i + 1] = sub.neighbors.size();
  }
  // Reset the scratch map for the next extraction.
  for (VertexId v : vertices) {
    global_to_local[v] = kInvalidVertex;
  }
  return sub;
}

struct RecursionState {
  const WeightedGraph* working;
  const RecursivePartitionerOptions* options;
  Partitioning* partitioning;
  PartitionSketch* sketch;
  std::vector<VertexId> global_to_local;
};

/// Bisects the subgraph on `vertices` for sketch `node`; assigns partition
/// IDs once single-partition nodes are reached.
void PartitionNode(RecursionState& state, std::vector<VertexId> vertices,
                   uint32_t node) {
  if (state.sketch->IsLeaf(node)) {
    const PartitionId partition =
        static_cast<PartitionId>(node - state.sketch->num_partitions());
    for (VertexId v : vertices) {
      state.partitioning->assignment[v] = partition;
    }
    return;
  }
  const WeightedGraph sub =
      ExtractSubgraph(*state.working, vertices, &state.global_to_local);
  BisectionOptions bisect_options = state.options->bisection;
  bisect_options.seed = state.options->bisection.seed * 2654435761ULL + node;
  // The bisection tree level: the root split of node 1 is level 0.
  uint32_t level = 0;
  for (uint32_t n = node; n > 1; n >>= 1) {
    ++level;
  }
  obs::Tracer* tracer = state.options->tracer;
  obs::MetricsRegistry* metrics = state.options->metrics;
  const bool timed = tracer != nullptr || metrics != nullptr;
  const auto wall_start = std::chrono::steady_clock::now();
  const double trace_start_us = tracer != nullptr ? tracer->WallNowUs() : 0.0;
  const BisectionResult result = Bisect(sub, bisect_options);
  const double elapsed_s =
      timed ? std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            wall_start)
                  .count()
            : 0.0;
  state.sketch->SetBisectionCut(node, result.cut_weight);
  if (tracer != nullptr) {
    tracer->RecordComplete(
        obs::TraceClock::kWall, "bisect[node=" + std::to_string(node) + "]",
        "partition", trace_start_us, elapsed_s * 1e6,
        obs::Tracer::CurrentThreadLane(),
        {{"level", std::to_string(level)},
         {"vertices", std::to_string(vertices.size())},
         {"cut", std::to_string(result.cut_weight)}});
  }
  if (metrics != nullptr) {
    const obs::Labels level_label = {{"level", std::to_string(level)}};
    metrics->CounterRef("partition_bisections_total").Increment();
    metrics->GaugeRef("partition_edge_cut", level_label)
        .Add(static_cast<double>(result.cut_weight));
    metrics->HistogramRef("partition_bisection_seconds", level_label)
        .Observe(elapsed_s);
  }

  std::vector<VertexId> left;
  std::vector<VertexId> right;
  left.reserve(vertices.size() / 2 + 1);
  right.reserve(vertices.size() / 2 + 1);
  for (size_t i = 0; i < vertices.size(); ++i) {
    if (result.side[i] == 0) {
      left.push_back(vertices[i]);
    } else {
      right.push_back(vertices[i]);
    }
  }
  vertices.clear();
  vertices.shrink_to_fit();
  PartitionNode(state, std::move(left), PartitionSketch::Left(node));
  PartitionNode(state, std::move(right), PartitionSketch::Right(node));
}

}  // namespace

Result<RecursivePartitionResult> RecursivePartition(
    const Graph& graph, const RecursivePartitionerOptions& options) {
  const uint32_t p = options.num_partitions;
  if (p == 0 || (p & (p - 1)) != 0) {
    return Status::InvalidArgument(
        "num_partitions must be a power of two, got " + std::to_string(p));
  }
  if (graph.num_vertices() < p) {
    return Status::InvalidArgument("fewer vertices than partitions");
  }

  RecursivePartitionResult result;
  result.partitioning.num_partitions = p;
  result.partitioning.assignment.assign(graph.num_vertices(), 0);
  result.sketch = PartitionSketch(p);
  if (p == 1) {
    return result;
  }

  const WeightedGraph working = WeightedGraph::FromDataGraph(graph);
  RecursionState state{&working, &options, &result.partitioning,
                       &result.sketch,
                       std::vector<VertexId>(graph.num_vertices(),
                                             kInvalidVertex)};
  std::vector<VertexId> all(graph.num_vertices());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    all[v] = v;
  }
  PartitionNode(state, std::move(all), /*node=*/1);
  return result;
}

}  // namespace surfer
