#include "partition/partition_sketch.h"

#include <bit>
#include <cstdio>

#include "common/logging.h"

namespace surfer {

PartitionSketch::PartitionSketch(uint32_t num_partitions)
    : num_partitions_(num_partitions) {
  SURFER_CHECK(num_partitions > 0 &&
               (num_partitions & (num_partitions - 1)) == 0)
      << "P must be a power of two, got " << num_partitions;
  num_levels_ = static_cast<uint32_t>(std::bit_width(num_partitions));
  bisection_cut_.assign(2 * static_cast<size_t>(num_partitions), 0);
}

uint32_t PartitionSketch::LevelOf(uint32_t node) const {
  SURFER_CHECK(node >= 1 && node < num_nodes());
  return static_cast<uint32_t>(std::bit_width(node)) - 1;
}

std::pair<PartitionId, PartitionId> PartitionSketch::LeafRange(
    uint32_t node) const {
  // Descend to the leftmost and rightmost leaves.
  uint32_t left = node;
  uint32_t right = node;
  while (left < num_partitions_) {
    left = Left(left);
    right = Right(right);
  }
  return {left - num_partitions_, right - num_partitions_ + 1};
}

uint64_t PartitionSketch::CrossEdges(const Graph& graph,
                                     const Partitioning& partitioning,
                                     uint32_t node_a, uint32_t node_b) const {
  const auto [a_begin, a_end] = LeafRange(node_a);
  const auto [b_begin, b_end] = LeafRange(node_b);
  auto in_a = [&](PartitionId p) { return p >= a_begin && p < a_end; };
  auto in_b = [&](PartitionId p) { return p >= b_begin && p < b_end; };
  uint64_t count = 0;
  for (VertexId u = 0; u < graph.num_vertices(); ++u) {
    const PartitionId pu = partitioning.assignment[u];
    const bool ua = in_a(pu);
    const bool ub = in_b(pu);
    if (!ua && !ub) {
      continue;
    }
    for (VertexId v : graph.OutNeighbors(u)) {
      const PartitionId pv = partitioning.assignment[v];
      if ((ua && in_b(pv)) || (ub && in_a(pv))) {
        ++count;
      }
    }
  }
  return count;
}

uint64_t PartitionSketch::TotalCrossEdgesAtLevel(
    const Graph& graph, const Partitioning& partitioning,
    uint32_t level) const {
  // A partition's level-l ancestor is leaf_node >> (num_levels - 1 - level).
  const uint32_t shift = (num_levels_ - 1) - level;
  uint64_t count = 0;
  for (VertexId u = 0; u < graph.num_vertices(); ++u) {
    const uint32_t group_u =
        LeafNode(partitioning.assignment[u]) >> shift;
    for (VertexId v : graph.OutNeighbors(u)) {
      const uint32_t group_v =
          LeafNode(partitioning.assignment[v]) >> shift;
      if (group_u != group_v) {
        ++count;
      }
    }
  }
  return count;
}

uint32_t PartitionSketch::LowestCommonAncestor(uint32_t node_a,
                                               uint32_t node_b) const {
  while (node_a != node_b) {
    if (node_a > node_b) {
      node_a = Parent(node_a);
    } else {
      node_b = Parent(node_b);
    }
  }
  return node_a;
}

std::string PartitionSketch::ToString() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "PartitionSketch(P=%u, levels=%u)",
                num_partitions_, num_levels_);
  return buf;
}

}  // namespace surfer
