#ifndef SURFER_PARTITION_MACHINE_GRAPH_H_
#define SURFER_PARTITION_MACHINE_GRAPH_H_

#include <vector>

#include "cluster/topology.h"
#include "common/result.h"
#include "partition/bisection.h"
#include "partition/partition_sketch.h"
#include "partition/weighted_graph.h"

namespace surfer {

/// Builds the machine graph of Section 4.2: a complete undirected weighted
/// graph with one vertex per machine and the pairwise network bandwidth as
/// edge weight, "constructed by calibrating the network bandwidth between
/// any two machines". With `capability_weights`, vertex weights carry NIC
/// capability so bisections balance aggregate bandwidth instead of machine
/// count — the load-balancing generalization used for the *storage* mapping
/// on heterogeneous clusters (identical to count-balancing on homogeneous
/// ones). Without it, every machine weighs 1 (the paper's literal
/// constraint), which is what the distributed-partitioning process itself
/// uses to divide bisection work.
WeightedGraph BuildMachineGraph(const Topology& topology,
                                bool capability_weights = true);

/// The machine side of Algorithm 4: the recursive bisection of the machine
/// graph aligned with the data-graph partition sketch. node_machines is
/// heap-indexed like PartitionSketch (node 1 = all machines); the mapping
/// assigns each data partition its storage/processing machine.
struct BandwidthAwarePlacement {
  std::vector<MachineId> partition_to_machine;
  /// Machine set per sketch node; nodes below the single-machine level hold
  /// that single machine.
  std::vector<std::vector<MachineId>> node_machines;
};

/// Options for the machine-graph bisection: the paper's constraint is two
/// halves with "around the same number of machines", so the balance epsilon
/// is zero by default.
struct BandwidthAwarePlacementOptions {
  BisectionOptions machine_bisection;
  /// Balance machine-graph bisections by NIC capability (storage mapping)
  /// rather than machine count (partitioning-process work division).
  bool capability_weights = true;
  BandwidthAwarePlacementOptions() { machine_bisection.balance_epsilon = 0.0; }
};

/// Runs the machine-graph side of Algorithm 4 for a P-partition sketch on
/// `topology`. Bisections *minimize* cut bandwidth, so sibling partitions
/// deep in the sketch (many mutual cross edges, by proximity) land on
/// machine sets with high mutual bandwidth (P1/P3). When machines run out
/// (|M| = 1 before the leaf level), all partitions below stay on that
/// machine; when partitions run out first, the leaf's graph is stored on the
/// machine with the maximum aggregated bandwidth within its set.
Result<BandwidthAwarePlacement> ComputeBandwidthAwarePlacement(
    const Topology& topology, const PartitionSketch& sketch,
    const BandwidthAwarePlacementOptions& options = {});

/// The ParMetis-like baseline layout: partitions dealt onto randomly
/// shuffled machines, oblivious to bandwidth ("ParMetis randomly chooses the
/// available machine", Section 6.2).
std::vector<MachineId> RandomPlacement(uint32_t num_partitions,
                                       const Topology& topology,
                                       uint64_t seed);

}  // namespace surfer

#endif  // SURFER_PARTITION_MACHINE_GRAPH_H_
