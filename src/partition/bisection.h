#ifndef SURFER_PARTITION_BISECTION_H_
#define SURFER_PARTITION_BISECTION_H_

#include <cstdint>
#include <vector>

#include "partition/weighted_graph.h"

namespace surfer {

class ThreadPool;

/// Options for one multilevel graph bisection (Appendix A.2): coarsening via
/// heavy-edge matching, initial partitioning via GGGP (greedy graph growing),
/// and FM boundary refinement during uncoarsening.
struct BisectionOptions {
  /// Allowed imbalance: each side's weight stays within
  /// (1 + balance_epsilon) * total / 2 whenever achievable.
  double balance_epsilon = 0.02;
  /// Coarsening stops when the graph has at most this many vertices
  /// ("the scale of thousands of vertices" per the paper; smaller is fine
  /// for our graph sizes).
  uint32_t coarsen_target = 256;
  /// Number of random GGGP seed growths; the best cut wins.
  uint32_t gggp_trials = 8;
  /// Maximum FM passes at each uncoarsening level.
  uint32_t refine_passes = 8;
  uint64_t seed = 1;
  /// Optional worker pool (not owned; may be null) for intra-bisection
  /// parallelism: cut evaluation, FM gain initialization, and the coarse
  /// graph build all shard over it on large graphs. The matching and the FM
  /// move loop stay sequential, so the result is bit-identical to a null
  /// pool at every pool size (see DESIGN.md Section 10).
  ThreadPool* pool = nullptr;
};

/// The outcome of a bisection: a side (0/1) per vertex, the cut weight, and
/// the two side weights.
struct BisectionResult {
  std::vector<uint8_t> side;
  int64_t cut_weight = 0;
  int64_t side_weight[2] = {0, 0};

  /// Fraction by which the heavier side exceeds the perfect half.
  double Imbalance() const {
    const int64_t total = side_weight[0] + side_weight[1];
    if (total == 0) {
      return 0.0;
    }
    const int64_t heavier = std::max(side_weight[0], side_weight[1]);
    return 2.0 * static_cast<double>(heavier) / static_cast<double>(total) -
           1.0;
  }
};

/// Computes the cut weight of an assignment (for verification). With a pool,
/// vertices are sharded into fixed chunks whose partial sums combine in chunk
/// order; integer addition makes that exact, so the result never depends on
/// the pool or its size.
int64_t ComputeCutWeight(const WeightedGraph& graph,
                         const std::vector<uint8_t>& side,
                         ThreadPool* pool = nullptr);

/// Runs a full multilevel bisection of `graph`.
BisectionResult Bisect(const WeightedGraph& graph,
                       const BisectionOptions& options);

namespace internal {

/// One level of heavy-edge-matching coarsening. `fine_to_coarse` maps each
/// fine vertex to its coarse vertex; the coarse graph merges matched pairs,
/// sums parallel edge weights, and drops intra-pair edges. The matching is
/// sequential (seeded, order-sensitive); the coarse-graph build shards over
/// `pool` when given — every coarse vertex's merged adjacency list is
/// computed independently and stitched in coarse-ID order, so the output is
/// identical to the sequential build.
WeightedGraph CoarsenOnce(const WeightedGraph& graph, uint64_t seed,
                          std::vector<VertexId>* fine_to_coarse,
                          ThreadPool* pool = nullptr);

/// GGGP initial bisection on a (small) graph.
BisectionResult InitialBisection(const WeightedGraph& graph,
                                 const BisectionOptions& options);

/// FM refinement; improves `result` in place. Returns the number of passes
/// that improved the cut.
uint32_t FmRefine(const WeightedGraph& graph, const BisectionOptions& options,
                  BisectionResult* result);

}  // namespace internal
}  // namespace surfer

#endif  // SURFER_PARTITION_BISECTION_H_
