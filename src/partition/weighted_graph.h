#ifndef SURFER_PARTITION_WEIGHTED_GRAPH_H_
#define SURFER_PARTITION_WEIGHTED_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace surfer {

class ThreadPool;

/// An undirected weighted graph in CSR form, the working representation of
/// the multilevel partitioner. Every edge appears in both endpoint lists
/// with the same weight. Vertex weights carry the "size" being balanced
/// (for data graphs: the stored record bytes, so partitions balance edges;
/// for machine graphs: 1 per machine).
struct WeightedGraph {
  std::vector<EdgeIndex> offsets;
  std::vector<VertexId> neighbors;
  std::vector<int64_t> edge_weights;   ///< parallel to `neighbors`
  std::vector<int64_t> vertex_weights;

  VertexId num_vertices() const {
    return offsets.empty() ? 0 : static_cast<VertexId>(offsets.size() - 1);
  }
  /// Number of stored half-edges (2x the undirected edge count).
  EdgeIndex num_half_edges() const { return neighbors.size(); }

  std::span<const VertexId> Neighbors(VertexId v) const {
    return {neighbors.data() + offsets[v], neighbors.data() + offsets[v + 1]};
  }
  std::span<const int64_t> EdgeWeights(VertexId v) const {
    return {edge_weights.data() + offsets[v],
            edge_weights.data() + offsets[v + 1]};
  }

  int64_t TotalVertexWeight() const;

  /// Sum of the weighted degree of v.
  int64_t WeightedDegree(VertexId v) const;

  /// Builds the partitioner's working graph from a directed data graph:
  /// symmetrize, drop self-loops, merge parallel edges (weight = number of
  /// directed edges between the endpoints, i.e. 1 or 2), and set vertex
  /// weight to the stored adjacency-record size so that balancing vertex
  /// weight balances partition bytes (constraint of Section 2). The
  /// per-vertex sort/merge pass (the dominant cost) shards over `pool` when
  /// given; every vertex's list is built independently into a preallocated
  /// range, so the result is identical to the sequential build.
  static WeightedGraph FromDataGraph(const Graph& graph,
                                     ThreadPool* pool = nullptr);

  /// Builds a complete machine graph: vertex per machine, edge weight =
  /// pairwise bandwidth scaled to integers, vertex weight 1 (the paper's
  /// balance constraint is "around the same number of machines").
  static WeightedGraph CompleteFromWeights(
      const std::vector<std::vector<double>>& bandwidth);
};

}  // namespace surfer

#endif  // SURFER_PARTITION_WEIGHTED_GRAPH_H_
