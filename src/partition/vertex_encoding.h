#ifndef SURFER_PARTITION_VERTEX_ENCODING_H_
#define SURFER_PARTITION_VERTEX_ENCODING_H_

#include <vector>

#include "common/result.h"
#include "graph/graph.h"
#include "partition/partitioning.h"

namespace surfer {

/// The vertex-ID encoding of Appendix B: vertices are renumbered so that
/// each partition owns a consecutive ID range (partition k starts at
/// sum of sizes of partitions 0..k-1). The partition of any encoded vertex
/// is then a binary search over P prefix sums — no global vertex->partition
/// map is needed, which is what makes Combine-task recovery cheap.
class VertexEncoding {
 public:
  VertexEncoding() = default;

  /// Builds the encoding for `partitioning` (vertices keep their relative
  /// order within a partition).
  static VertexEncoding Create(const Partitioning& partitioning);

  /// Rebuilds an encoding from its serialized pieces: the encoded->original
  /// map and the P+1 partition range starts. Validates that `to_original`
  /// is a permutation and the starts tile [0, n].
  static Result<VertexEncoding> FromMapping(std::vector<VertexId> to_original,
                                            std::vector<VertexId> starts);

  VertexId ToEncoded(VertexId original) const { return to_encoded_[original]; }
  VertexId ToOriginal(VertexId encoded) const { return to_original_[encoded]; }

  /// Partition owning an encoded vertex ID (binary search over the starts).
  PartitionId PartitionOf(VertexId encoded) const;

  /// Encoded ID range [begin, end) of a partition.
  std::pair<VertexId, VertexId> Range(PartitionId partition) const {
    return {starts_[partition], starts_[partition + 1]};
  }

  uint32_t num_partitions() const {
    return static_cast<uint32_t>(starts_.size()) - 1;
  }
  VertexId num_vertices() const {
    return static_cast<VertexId>(to_encoded_.size());
  }
  const std::vector<VertexId>& starts() const { return starts_; }

  /// Rewrites `graph` into the encoded ID space. The rewritten graph,
  /// together with the ranges, is what the storage layer splits into
  /// partition files.
  Graph Reencode(const Graph& graph) const;

 private:
  std::vector<VertexId> to_encoded_;
  std::vector<VertexId> to_original_;
  std::vector<VertexId> starts_;  // size P+1
};

}  // namespace surfer

#endif  // SURFER_PARTITION_VERTEX_ENCODING_H_
