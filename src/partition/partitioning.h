#ifndef SURFER_PARTITION_PARTITIONING_H_
#define SURFER_PARTITION_PARTITIONING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"
#include "graph/types.h"

namespace surfer {

/// A P-way assignment of the vertices of a data graph.
struct Partitioning {
  uint32_t num_partitions = 0;
  std::vector<PartitionId> assignment;  ///< partition per vertex

  bool Valid(const Graph& graph) const {
    return assignment.size() == graph.num_vertices();
  }
};

/// Quality metrics of a partitioning over the *directed* data graph
/// (Section 2's objective and Appendix F.2's inner-edge ratio).
struct PartitionQuality {
  uint64_t inner_edges = 0;
  uint64_t cross_edges = 0;
  /// ier = inner_edges / |E| (Table 5).
  double inner_edge_ratio = 0.0;
  /// Heaviest partition's stored bytes over the average.
  double balance = 0.0;
  std::vector<uint64_t> partition_vertices;
  std::vector<uint64_t> partition_edges;
  std::vector<uint64_t> partition_bytes;  ///< stored record bytes

  std::string ToString() const;
};

/// Computes quality metrics for `partitioning` over `graph`.
PartitionQuality ComputeQuality(const Graph& graph,
                                const Partitioning& partitioning);

/// Counts directed edges between two partitions (either direction), the
/// C(n1, n2) of Section 4.1 evaluated on leaves.
uint64_t CrossEdgesBetween(const Graph& graph, const Partitioning& partitioning,
                           PartitionId a, PartitionId b);

/// Random baseline of Appendix F.2's sanity check: vertices shuffled and
/// dealt greedily to the lightest partition by stored bytes, so sizes stay
/// balanced but structure is ignored.
Result<Partitioning> RandomPartition(const Graph& graph,
                                     uint32_t num_partitions, uint64_t seed);

/// The paper's partition-count rule (Section 4.2):
/// P = 2^ceil(log2(||G|| / memory_bytes)), at least 1.
uint32_t ChooseNumPartitions(size_t graph_bytes, uint64_t memory_bytes);

}  // namespace surfer

#endif  // SURFER_PARTITION_PARTITIONING_H_
