#include "partition/partitioning.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

#include "common/random.h"

namespace surfer {

PartitionQuality ComputeQuality(const Graph& graph,
                                const Partitioning& partitioning) {
  PartitionQuality q;
  const uint32_t p = partitioning.num_partitions;
  q.partition_vertices.assign(p, 0);
  q.partition_edges.assign(p, 0);
  q.partition_bytes.assign(p, 0);
  for (VertexId u = 0; u < graph.num_vertices(); ++u) {
    const PartitionId pu = partitioning.assignment[u];
    ++q.partition_vertices[pu];
    q.partition_edges[pu] += graph.OutDegree(u);
    q.partition_bytes[pu] += StoredVertexRecordBytes(graph.OutDegree(u));
    for (VertexId v : graph.OutNeighbors(u)) {
      if (partitioning.assignment[v] == pu) {
        ++q.inner_edges;
      } else {
        ++q.cross_edges;
      }
    }
  }
  const uint64_t total_edges = q.inner_edges + q.cross_edges;
  q.inner_edge_ratio =
      total_edges == 0 ? 1.0
                       : static_cast<double>(q.inner_edges) /
                             static_cast<double>(total_edges);
  if (p > 0) {
    const uint64_t max_bytes =
        *std::max_element(q.partition_bytes.begin(), q.partition_bytes.end());
    const double avg_bytes =
        static_cast<double>(std::accumulate(q.partition_bytes.begin(),
                                            q.partition_bytes.end(),
                                            static_cast<uint64_t>(0))) /
        static_cast<double>(p);
    q.balance = avg_bytes > 0.0 ? static_cast<double>(max_bytes) / avg_bytes
                                : 1.0;
  }
  return q;
}

std::string PartitionQuality::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "ier=%.3f cross=%llu inner=%llu balance=%.3f parts=%zu",
                inner_edge_ratio,
                static_cast<unsigned long long>(cross_edges),
                static_cast<unsigned long long>(inner_edges), balance,
                partition_bytes.size());
  return buf;
}

uint64_t CrossEdgesBetween(const Graph& graph,
                           const Partitioning& partitioning, PartitionId a,
                           PartitionId b) {
  uint64_t count = 0;
  for (VertexId u = 0; u < graph.num_vertices(); ++u) {
    const PartitionId pu = partitioning.assignment[u];
    if (pu != a && pu != b) {
      continue;
    }
    for (VertexId v : graph.OutNeighbors(u)) {
      const PartitionId pv = partitioning.assignment[v];
      if ((pu == a && pv == b) || (pu == b && pv == a)) {
        ++count;
      }
    }
  }
  return count;
}

Result<Partitioning> RandomPartition(const Graph& graph,
                                     uint32_t num_partitions, uint64_t seed) {
  if (num_partitions == 0) {
    return Status::InvalidArgument("num_partitions must be positive");
  }
  Partitioning result;
  result.num_partitions = num_partitions;
  result.assignment.assign(graph.num_vertices(), 0);

  std::vector<VertexId> order(graph.num_vertices());
  std::iota(order.begin(), order.end(), 0);
  Rng rng(seed);
  std::shuffle(order.begin(), order.end(), rng);

  // Greedy: next vertex goes to the lightest partition by stored bytes.
  std::vector<uint64_t> bytes(num_partitions, 0);
  for (VertexId v : order) {
    const auto lightest =
        std::min_element(bytes.begin(), bytes.end()) - bytes.begin();
    result.assignment[v] = static_cast<PartitionId>(lightest);
    bytes[lightest] += StoredVertexRecordBytes(graph.OutDegree(v));
  }
  return result;
}

uint32_t ChooseNumPartitions(size_t graph_bytes, uint64_t memory_bytes) {
  if (memory_bytes == 0 || graph_bytes <= memory_bytes) {
    return 1;
  }
  const double ratio =
      static_cast<double>(graph_bytes) / static_cast<double>(memory_bytes);
  const uint32_t levels = static_cast<uint32_t>(std::ceil(std::log2(ratio)));
  return 1u << levels;
}

}  // namespace surfer
