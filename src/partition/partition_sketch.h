#ifndef SURFER_PARTITION_PARTITION_SKETCH_H_
#define SURFER_PARTITION_PARTITION_SKETCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "partition/partitioning.h"

namespace surfer {

/// The partition sketch of Section 4.1: a balanced binary tree over the
/// recursive bisections. Nodes use heap indexing — node 1 is the root, node
/// i has children 2i and 2i+1, and leaf (P + i) corresponds to partition i.
/// The sketch has log2(P) + 1 levels; the root is level 0 here (the paper
/// counts from 1, which only shifts labels).
class PartitionSketch {
 public:
  PartitionSketch() = default;

  /// Builds an empty sketch for P partitions (P must be a power of two).
  explicit PartitionSketch(uint32_t num_partitions);

  uint32_t num_partitions() const { return num_partitions_; }
  uint32_t num_levels() const { return num_levels_; }
  size_t num_nodes() const { return 2 * static_cast<size_t>(num_partitions_); }

  /// Heap index of the leaf for `partition`.
  uint32_t LeafNode(PartitionId partition) const {
    return num_partitions_ + partition;
  }
  static uint32_t Parent(uint32_t node) { return node / 2; }
  static uint32_t Left(uint32_t node) { return 2 * node; }
  static uint32_t Right(uint32_t node) { return 2 * node + 1; }
  uint32_t LevelOf(uint32_t node) const;
  bool IsLeaf(uint32_t node) const { return node >= num_partitions_; }

  /// Partitions (leaves) under `node`, a contiguous ID range.
  std::pair<PartitionId, PartitionId> LeafRange(uint32_t node) const;

  /// Records the cut weight observed when bisecting `node` into its two
  /// children during partitioning.
  void SetBisectionCut(uint32_t node, int64_t cut) {
    bisection_cut_[node] = cut;
  }
  int64_t BisectionCut(uint32_t node) const { return bisection_cut_[node]; }

  /// C(n1, n2) of Section 4.1: directed edges between the leaf sets of two
  /// sketch nodes, counted in either direction.
  uint64_t CrossEdges(const Graph& graph, const Partitioning& partitioning,
                      uint32_t node_a, uint32_t node_b) const;

  /// T_l of the monotonicity property: total cross-partition edges among the
  /// level-l nodes (i.e. edges whose endpoints fall under different level-l
  /// nodes).
  uint64_t TotalCrossEdgesAtLevel(const Graph& graph,
                                  const Partitioning& partitioning,
                                  uint32_t level) const;

  /// Lowest common ancestor of two leaves; proximity (P3) says partitions
  /// with a *lower* (deeper) common ancestor share more cross edges.
  uint32_t LowestCommonAncestor(uint32_t node_a, uint32_t node_b) const;

  std::string ToString() const;

 private:
  uint32_t num_partitions_ = 0;
  uint32_t num_levels_ = 0;
  std::vector<int64_t> bisection_cut_;  // per heap node; leaves unused
};

}  // namespace surfer

#endif  // SURFER_PARTITION_PARTITION_SKETCH_H_
