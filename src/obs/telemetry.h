#ifndef SURFER_OBS_TELEMETRY_H_
#define SURFER_OBS_TELEMETRY_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "obs/trace.h"

namespace surfer {
namespace obs {

/// Process memory occupancy read from /proc/self/status (Linux). When the
/// file is missing or carries no Vm lines (non-Linux platforms, restrictive
/// sandboxes), `available` is false and the counters are zero — consumers
/// must suppress RSS gauges and report fields rather than export zeros that
/// read as measurements.
struct MemoryUsage {
  bool available = false;       ///< the probe actually measured something
  uint64_t rss_bytes = 0;       ///< VmRSS: current resident set
  uint64_t peak_rss_bytes = 0;  ///< VmHWM: resident high-water mark
};

/// One read of /proc/self/status. Costs one small file read (~10us); cheap
/// enough for end-of-run metrics, too slow for a 1ms sampling tick — the
/// flight recorder registers it with a period multiple instead. Logs one
/// warning per process the first time the probe comes back unavailable.
MemoryUsage ReadMemoryUsage();

/// Path-parameterized probe for tests: reads a /proc/self/status-shaped
/// file from `path`. Does not log.
MemoryUsage ReadMemoryUsageFrom(const std::string& path);

/// One point-in-time sample of a gauge series.
struct TelemetrySample {
  double t_us = 0.0;  ///< microseconds since the recorder's origin
  double value = 0.0;
};

/// Snapshot of one recorded time series, oldest retained sample first.
struct TelemetrySeries {
  std::string name;
  std::string unit;          ///< "bytes", "items", "workers", ... (free-form)
  double ceiling = 0.0;      ///< saturation level (channel window, ring
                             ///< capacity, barrier membership); 0 = none
  uint64_t samples_taken = 0;    ///< every sample ever taken for this series
  uint64_t samples_dropped = 0;  ///< overwritten by ring wrap-around
  std::vector<TelemetrySample> samples;
};

/// Knobs of the flight recorder. Embedded in runtime::RuntimeOptions so one
/// flag turns time-resolved telemetry on for a run.
struct TelemetryOptions {
  /// Master switch: when false the recorder never starts a thread, providers
  /// are never called, and every recording entry point is a no-op.
  bool enabled = false;
  /// Sampling period of the background thread. ~1ms resolves superstep-scale
  /// dynamics; the sampler costs well under 2% of one core at this rate
  /// (pinned by the telemetry_sample microbenchmark).
  double period_seconds = 0.001;
  /// Retained samples per series, rounded up to a power of two. When a run
  /// outlives the ring the oldest samples are overwritten and counted in
  /// samples_dropped — flight-recorder semantics: the newest window
  /// survives, and the drop counter says the view is partial.
  size_t ring_capacity = 4096;
};

/// A low-overhead flight recorder for runtime gauges.
///
/// Registration (cold path, before Start) attaches named *providers* —
/// callables that read lock-free state such as atomics mirrored next to the
/// runtime's mutex-protected structures. A background thread then samples
/// every provider at a fixed period into per-series ring buffers. The
/// instrumented hot paths never see a lock or an allocation from telemetry:
/// they only update atomics they already own, and the sampler reads those
/// atomics from its own thread.
///
/// Disabled (options.enabled == false, or Start never called), the recorder
/// is fully inert: no thread, no provider calls, empty snapshots.
///
/// Thread contract: RegisterGauge is for setup code. Start/Stop bracket the
/// sampled region. Snapshot/ToJson/ExportCounterEvents may run while the
/// sampler is live (they synchronize with it) but are meant for after Stop.
class TelemetryRecorder {
 public:
  using Provider = std::function<double()>;
  using Clock = std::chrono::steady_clock;

  explicit TelemetryRecorder(TelemetryOptions options = {});
  ~TelemetryRecorder();  ///< stops the sampler if still running

  TelemetryRecorder(const TelemetryRecorder&) = delete;
  TelemetryRecorder& operator=(const TelemetryRecorder&) = delete;

  /// Registers one gauge series. `ceiling`, when nonzero, records the
  /// value's saturation level (a channel's byte window, a pool's high-water,
  /// a barrier's membership) so exporters can report occupancy fractions.
  /// `period_multiple` samples the series every Nth tick — for providers
  /// like the /proc memory probe that are too costly at the base period.
  /// Returns the series index.
  size_t RegisterGauge(std::string name, std::string unit, Provider provider,
                       double ceiling = 0.0, uint32_t period_multiple = 1);

  /// Starts the background sampler (no-op when disabled or no series are
  /// registered). `origin` anchors sample timestamps: pass the run's start
  /// instant so telemetry time aligns with the run's other clocks.
  void Start(Clock::time_point origin = Clock::now());

  /// Stops and joins the sampler. Idempotent.
  void Stop();

  bool enabled() const { return options_.enabled; }
  bool running() const { return thread_.joinable(); }
  const TelemetryOptions& options() const { return options_; }

  /// Takes one synchronous sampling tick on the caller's thread. This is
  /// the same code path the background thread runs; exposed so the overhead
  /// microbenchmark can price a tick and tests can sample deterministically
  /// (without Start, the first tick anchors the timestamp origin itself).
  void SampleNow();

  /// Microseconds since `origin` (0 before Start).
  double NowUs() const;

  /// Sampling ticks completed so far.
  uint64_t samples_taken() const;
  /// Samples lost to ring wrap-around, summed across series.
  uint64_t total_dropped() const;

  std::vector<TelemetrySeries> Snapshot() const;

  /// The run report's "telemetry" block (schema v3): sampling parameters,
  /// drop counters, and per-series metadata + summary + retained samples.
  /// Series whose every retained sample is zero carry summary only (no
  /// "samples" array) — with M^2 channel series most are idle and the
  /// elision keeps reports proportional to what actually happened.
  JsonValue ToJson() const;

  /// Merges every retained sample into `tracer` as Chrome counter events
  /// ("ph":"C") so the series chart under the spans in chrome://tracing.
  /// `offset_us` maps recorder time onto the tracer's origin: pass the
  /// tracer's WallNowUs() captured at the recorder's origin instant.
  void ExportCounterEvents(Tracer* tracer, double offset_us) const;

 private:
  /// One registered series: the provider plus its sample ring. `head` counts
  /// every sample ever written; the ring keeps the last capacity of them.
  struct Series {
    std::string name;
    std::string unit;
    double ceiling = 0.0;
    uint32_t period_multiple = 1;
    Provider provider;
    std::vector<TelemetrySample> ring;  ///< power-of-two slots
    uint64_t head = 0;
  };

  void SamplerMain();
  void SampleLocked(double t_us);
  TelemetrySeries SnapshotSeriesLocked(const Series& series) const;

  const TelemetryOptions options_;
  Clock::time_point origin_;
  bool origin_set_ = false;

  /// Guards series_ and the rings: taken by the sampler once per tick, by
  /// registration, and by snapshots — never by instrumented runtime code.
  mutable std::mutex mu_;
  std::vector<Series> series_;
  uint64_t ticks_ = 0;

  std::thread thread_;
  std::atomic<bool> stop_{false};
};

/// Summarizes a series' retained samples: min/mean/max, exact p99 over the
/// window, and the timestamp of the peak. Used by ToJson and by tests.
struct TelemetrySeriesSummary {
  double min = 0.0;
  double mean = 0.0;
  double max = 0.0;
  double p99 = 0.0;
  double peak_t_us = 0.0;  ///< timestamp of the first maximal sample
};

TelemetrySeriesSummary SummarizeTelemetrySeries(
    const std::vector<TelemetrySample>& samples);

}  // namespace obs
}  // namespace surfer

#endif  // SURFER_OBS_TELEMETRY_H_
