#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <fstream>
#include <map>

#include "common/histogram.h"

namespace surfer {
namespace obs {

namespace {

constexpr int kWallPid = 1;
constexpr int kSimulatedPid = 2;

int PidFor(TraceClock clock) {
  return clock == TraceClock::kWall ? kWallPid : kSimulatedPid;
}

}  // namespace

Tracer::Tracer() : origin_(std::chrono::steady_clock::now()) {}

double Tracer::WallNowUs() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - origin_)
      .count();
}

uint32_t Tracer::CurrentThreadLane() {
  static std::atomic<uint32_t> next_lane{0};
  thread_local const uint32_t lane =
      next_lane.fetch_add(1, std::memory_order_relaxed);
  return lane;
}

void Tracer::RecordComplete(
    TraceClock clock, std::string name, std::string category, double ts_us,
    double dur_us, uint32_t tid,
    std::vector<std::pair<std::string, std::string>> args) {
  if constexpr (!CompiledIn()) {
    return;
  }
  TraceEvent event;
  event.name = std::move(name);
  event.category = std::move(category);
  event.phase = 'X';
  event.clock = clock;
  event.ts_us = ts_us;
  event.dur_us = dur_us;
  event.tid = tid;
  event.args = std::move(args);
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
}

void Tracer::RecordInstant(
    TraceClock clock, std::string name, std::string category, double ts_us,
    uint32_t tid, std::vector<std::pair<std::string, std::string>> args) {
  if constexpr (!CompiledIn()) {
    return;
  }
  TraceEvent event;
  event.name = std::move(name);
  event.category = std::move(category);
  event.phase = 'i';
  event.clock = clock;
  event.ts_us = ts_us;
  event.tid = tid;
  event.args = std::move(args);
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
}

void Tracer::RecordCounter(TraceClock clock, std::string name,
                           std::string category, double ts_us, uint32_t tid,
                           double value) {
  if constexpr (!CompiledIn()) {
    return;
  }
  TraceEvent event;
  event.name = std::move(name);
  event.category = std::move(category);
  event.phase = 'C';
  event.clock = clock;
  event.ts_us = ts_us;
  event.tid = tid;
  event.counter_value = value;
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
}

size_t Tracer::num_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::vector<TraceEvent> Tracer::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::vector<SpanStat> Tracer::SpanSummary() const {
  std::map<std::pair<int, std::string>, SpanStat> by_name;
  std::map<std::pair<int, std::string>, Histogram> durations;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const TraceEvent& event : events_) {
      if (event.phase != 'X') {
        continue;
      }
      const std::pair<int, std::string> key{PidFor(event.clock), event.name};
      SpanStat& stat = by_name[key];
      if (stat.count == 0) {
        stat.name = event.name;
        stat.clock = event.clock;
        stat.min_us = event.dur_us;
      }
      ++stat.count;
      stat.total_us += event.dur_us;
      stat.min_us = std::min(stat.min_us, event.dur_us);
      stat.max_us = std::max(stat.max_us, event.dur_us);
      durations[key].Add(event.dur_us);
    }
  }
  std::vector<SpanStat> stats;
  stats.reserve(by_name.size());
  for (auto& [key, stat] : by_name) {
    const Histogram& hist = durations[key];
    stat.p50_us = hist.Percentile(50);
    stat.p99_us = hist.Percentile(99);
    stats.push_back(std::move(stat));
  }
  std::sort(stats.begin(), stats.end(), [](const SpanStat& a,
                                           const SpanStat& b) {
    return a.total_us > b.total_us;
  });
  return stats;
}

JsonValue Tracer::ToChromeJson() const {
  JsonValue trace_events = JsonValue::MakeArray();
  // Name the two clock-domain "processes" so Perfetto labels the tracks.
  for (const auto& [pid, label] :
       {std::pair<int, const char*>{kWallPid, "wall clock"},
        std::pair<int, const char*>{kSimulatedPid, "simulated cluster"}}) {
    JsonValue meta = JsonValue::MakeObject();
    meta.Set("name", "process_name");
    meta.Set("ph", "M");
    meta.Set("pid", pid);
    meta.Set("tid", 0);
    JsonValue args = JsonValue::MakeObject();
    args.Set("name", label);
    meta.Set("args", std::move(args));
    trace_events.Append(std::move(meta));
  }
  for (const TraceEvent& event : Events()) {
    JsonValue entry = JsonValue::MakeObject();
    entry.Set("name", event.name);
    if (!event.category.empty()) {
      entry.Set("cat", event.category);
    }
    entry.Set("ph", std::string(1, event.phase));
    entry.Set("ts", event.ts_us);
    if (event.phase == 'X') {
      entry.Set("dur", event.dur_us);
    }
    entry.Set("pid", PidFor(event.clock));
    entry.Set("tid", static_cast<uint64_t>(event.tid));
    if (event.phase == 'i') {
      entry.Set("s", "t");  // instant scoped to its thread lane
    }
    if (event.phase == 'C') {
      // Counter args must be numeric for the viewer to chart them.
      JsonValue args = JsonValue::MakeObject();
      args.Set("value", event.counter_value);
      entry.Set("args", std::move(args));
      trace_events.Append(std::move(entry));
      continue;
    }
    if (!event.args.empty()) {
      JsonValue args = JsonValue::MakeObject();
      for (const auto& [k, v] : event.args) {
        args.Set(k, v);
      }
      entry.Set("args", std::move(args));
    }
    trace_events.Append(std::move(entry));
  }
  JsonValue root = JsonValue::MakeObject();
  root.Set("traceEvents", std::move(trace_events));
  root.Set("displayTimeUnit", "ms");
  return root;
}

Status Tracer::WriteChromeTrace(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return Status::IOError("cannot open trace file " + path);
  }
  out << ToChromeJson().Write(/*indent=*/1);
  out << "\n";
  out.close();
  if (!out.good()) {
    return Status::IOError("failed writing trace file " + path);
  }
  return Status::OK();
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
}

}  // namespace obs
}  // namespace surfer
