#include "obs/telemetry.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/logging.h"

namespace surfer {
namespace obs {

namespace {

size_t RoundUpPowerOfTwo(size_t n) {
  size_t p = 2;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

/// Parses one "Vm...:   1234 kB" line value into bytes.
uint64_t ParseKbLine(const std::string& line) {
  const size_t colon = line.find(':');
  if (colon == std::string::npos) {
    return 0;
  }
  return std::strtoull(line.c_str() + colon + 1, nullptr, 10) * 1024;
}

}  // namespace

MemoryUsage ReadMemoryUsageFrom(const std::string& path) {
  MemoryUsage usage;
  std::ifstream status(path);
  if (!status.is_open()) {
    return usage;
  }
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      usage.rss_bytes = ParseKbLine(line);
      usage.available = true;
    } else if (line.rfind("VmHWM:", 0) == 0) {
      usage.peak_rss_bytes = ParseKbLine(line);
      usage.available = true;
    }
    if (usage.rss_bytes != 0 && usage.peak_rss_bytes != 0) {
      break;
    }
  }
  return usage;
}

MemoryUsage ReadMemoryUsage() {
  const MemoryUsage usage = ReadMemoryUsageFrom("/proc/self/status");
  if (!usage.available) {
    // Once per process: every sampler tick calls this, and a sandbox that
    // hides /proc hides it for the whole run.
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true, std::memory_order_relaxed)) {
      SURFER_LOG(kWarning)
          << "memory probe unavailable: /proc/self/status is missing or "
             "carries no Vm lines; RSS gauges and report fields suppressed";
    }
  }
  return usage;
}

TelemetryRecorder::TelemetryRecorder(TelemetryOptions options)
    : options_(std::move(options)) {}

TelemetryRecorder::~TelemetryRecorder() { Stop(); }

size_t TelemetryRecorder::RegisterGauge(std::string name, std::string unit,
                                        Provider provider, double ceiling,
                                        uint32_t period_multiple) {
  std::lock_guard<std::mutex> lock(mu_);
  Series series;
  series.name = std::move(name);
  series.unit = std::move(unit);
  series.ceiling = ceiling;
  series.period_multiple = period_multiple > 0 ? period_multiple : 1;
  series.provider = std::move(provider);
  series.ring.resize(RoundUpPowerOfTwo(
      options_.ring_capacity > 0 ? options_.ring_capacity : 2));
  series_.push_back(std::move(series));
  return series_.size() - 1;
}

void TelemetryRecorder::Start(Clock::time_point origin) {
  if (!options_.enabled || thread_.joinable()) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (series_.empty()) {
      return;
    }
  }
  origin_ = origin;
  origin_set_ = true;
  stop_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { SamplerMain(); });
}

void TelemetryRecorder::Stop() {
  if (!thread_.joinable()) {
    return;
  }
  stop_.store(true, std::memory_order_release);
  thread_.join();
}

void TelemetryRecorder::SamplerMain() {
  const auto period = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(options_.period_seconds));
  // Tick on an absolute schedule so provider cost does not stretch the
  // period; a tick that overruns simply skips ahead (no catch-up burst,
  // which would concentrate sampling load right when the host is busiest).
  auto next = Clock::now() + period;
  while (!stop_.load(std::memory_order_acquire)) {
    SampleNow();
    std::this_thread::sleep_until(next);
    const auto now = Clock::now();
    next += period;
    if (next < now) {
      next = now + period;
    }
  }
  // One final tick so short runs (and the stop edge) are represented.
  SampleNow();
}

void TelemetryRecorder::SampleNow() {
  if (!options_.enabled) {
    return;
  }
  if (!origin_set_) {
    // Synchronous use without Start (tests, the overhead microbenchmark):
    // the first tick anchors the origin. Cannot race the sampler thread —
    // its existence implies Start already set the origin.
    origin_ = Clock::now();
    origin_set_ = true;
  }
  const double t_us = NowUs();
  std::lock_guard<std::mutex> lock(mu_);
  SampleLocked(t_us);
}

void TelemetryRecorder::SampleLocked(double t_us) {
  for (Series& series : series_) {
    if (ticks_ % series.period_multiple != 0) {
      continue;
    }
    TelemetrySample& slot = series.ring[series.head & (series.ring.size() - 1)];
    slot.t_us = t_us;
    slot.value = series.provider();
    ++series.head;
  }
  ++ticks_;
}

double TelemetryRecorder::NowUs() const {
  if (!origin_set_) {
    return 0.0;
  }
  return std::chrono::duration<double, std::micro>(Clock::now() - origin_)
      .count();
}

uint64_t TelemetryRecorder::samples_taken() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ticks_;
}

uint64_t TelemetryRecorder::total_dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t dropped = 0;
  for (const Series& series : series_) {
    if (series.head > series.ring.size()) {
      dropped += series.head - series.ring.size();
    }
  }
  return dropped;
}

TelemetrySeries TelemetryRecorder::SnapshotSeriesLocked(
    const Series& series) const {
  TelemetrySeries out;
  out.name = series.name;
  out.unit = series.unit;
  out.ceiling = series.ceiling;
  out.samples_taken = series.head;
  const size_t capacity = series.ring.size();
  out.samples_dropped =
      series.head > capacity ? series.head - capacity : 0;
  const uint64_t retained = std::min<uint64_t>(series.head, capacity);
  out.samples.reserve(retained);
  for (uint64_t i = series.head - retained; i < series.head; ++i) {
    out.samples.push_back(series.ring[i & (capacity - 1)]);
  }
  return out;
}

std::vector<TelemetrySeries> TelemetryRecorder::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TelemetrySeries> out;
  out.reserve(series_.size());
  for (const Series& series : series_) {
    out.push_back(SnapshotSeriesLocked(series));
  }
  return out;
}

TelemetrySeriesSummary SummarizeTelemetrySeries(
    const std::vector<TelemetrySample>& samples) {
  TelemetrySeriesSummary summary;
  if (samples.empty()) {
    return summary;
  }
  summary.min = samples[0].value;
  summary.max = samples[0].value;
  summary.peak_t_us = samples[0].t_us;
  double total = 0.0;
  std::vector<double> values;
  values.reserve(samples.size());
  for (const TelemetrySample& sample : samples) {
    total += sample.value;
    values.push_back(sample.value);
    summary.min = std::min(summary.min, sample.value);
    if (sample.value > summary.max) {
      summary.max = sample.value;
      summary.peak_t_us = sample.t_us;
    }
  }
  summary.mean = total / static_cast<double>(samples.size());
  // Exact p99 over the retained window (nearest-rank): the window is small
  // and already in memory, so no histogram estimate is needed.
  const size_t rank =
      std::min(values.size() - 1,
               static_cast<size_t>(0.99 * static_cast<double>(values.size())));
  std::nth_element(values.begin(), values.begin() + rank, values.end());
  summary.p99 = values[rank];
  return summary;
}

JsonValue TelemetryRecorder::ToJson() const {
  const std::vector<TelemetrySeries> snapshot = Snapshot();
  JsonValue block = JsonValue::MakeObject();
  block.Set("period_seconds", options_.period_seconds);
  block.Set("ring_capacity", static_cast<uint64_t>(
                                 RoundUpPowerOfTwo(options_.ring_capacity)));
  block.Set("samples_taken", samples_taken());
  block.Set("samples_dropped", total_dropped());
  JsonValue series_array = JsonValue::MakeArray();
  for (const TelemetrySeries& series : snapshot) {
    const TelemetrySeriesSummary summary =
        SummarizeTelemetrySeries(series.samples);
    JsonValue entry = JsonValue::MakeObject();
    entry.Set("name", series.name);
    entry.Set("unit", series.unit);
    if (series.ceiling > 0.0) {
      entry.Set("ceiling", series.ceiling);
    }
    entry.Set("count", static_cast<uint64_t>(series.samples.size()));
    entry.Set("samples_taken", series.samples_taken);
    entry.Set("samples_dropped", series.samples_dropped);
    entry.Set("min", summary.min);
    entry.Set("mean", summary.mean);
    entry.Set("max", summary.max);
    entry.Set("p99", summary.p99);
    entry.Set("peak_t_us", summary.peak_t_us);
    // All-zero series (idle channels, never-blocked barriers) keep their
    // summary but skip the sample array; readers treat a missing "samples"
    // as "flat zero the whole window".
    if (summary.min != 0.0 || summary.max != 0.0) {
      JsonValue samples = JsonValue::MakeArray();
      for (const TelemetrySample& sample : series.samples) {
        JsonValue pair = JsonValue::MakeArray();
        pair.Append(sample.t_us);
        pair.Append(sample.value);
        samples.Append(std::move(pair));
      }
      entry.Set("samples", std::move(samples));
    }
    series_array.Append(std::move(entry));
  }
  block.Set("series", std::move(series_array));
  return block;
}

void TelemetryRecorder::ExportCounterEvents(Tracer* tracer,
                                            double offset_us) const {
  if (tracer == nullptr || !Tracer::CompiledIn()) {
    return;
  }
  for (const TelemetrySeries& series : Snapshot()) {
    const TelemetrySeriesSummary summary =
        SummarizeTelemetrySeries(series.samples);
    if (summary.min == 0.0 && summary.max == 0.0) {
      continue;  // flat-zero series would only clutter the trace view
    }
    for (const TelemetrySample& sample : series.samples) {
      tracer->RecordCounter(TraceClock::kWall, series.name, "telemetry",
                            sample.t_us + offset_us, /*tid=*/0, sample.value);
    }
  }
}

}  // namespace obs
}  // namespace surfer
