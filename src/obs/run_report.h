#ifndef SURFER_OBS_RUN_REPORT_H_
#define SURFER_OBS_RUN_REPORT_H_

#include <string>

#include "cluster/metrics.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "obs/json.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace surfer {
namespace obs {

/// Version of the run-report JSON schema documented in DESIGN.md
/// ("Observability"). Bump when a field is renamed or removed; adding
/// fields is backwards compatible. v2 added the "timeline" block (superstep
/// phase breakdown + critical path) and span tail-latency fields. v3 added
/// the optional "telemetry" block (flight-recorder time series), the
/// "provenance" header, and superstep start_s/end_s bounds.
inline constexpr int kRunReportSchemaVersion = 3;

/// Oldest schema still accepted by ValidateRunReport: v1 and v2 reports
/// remain loadable because later versions only added fields.
inline constexpr int kMinSupportedRunReportSchemaVersion = 1;

/// Identity block of a run report.
struct RunReportOptions {
  std::string name;   ///< producing target, e.g. "bench_fig11_scalability"
  std::string notes;  ///< free-form context (parameters, graph size, ...)
};

/// Serializes one run into the stable report schema. Any of `run`,
/// `registry`, `tracer`, `runtime_block`, `timeline_block`,
/// `telemetry_block` may be null; the corresponding section is omitted.
/// `runtime_block` is a pre-built `runtime` section (the concurrent
/// executor's worker/channel/barrier tallies, produced by
/// runtime::RuntimeStatsToJson), `timeline_block` the schema-v2 `timeline`
/// section (runtime::TimelineToJson), and `telemetry_block` the schema-v3
/// `telemetry` section (obs::TelemetryRecorder::ToJson) — passed in as
/// opaque JSON so this layer never depends on the runtime it observes.
/// Every report also carries a "provenance" header (timestamp, hostname,
/// host cores, build type, sanitizer) so archived artifacts are
/// self-describing.
JsonValue BuildRunReport(const RunReportOptions& options,
                         const RunMetrics* run,
                         const MetricsRegistry* registry,
                         const Tracer* tracer,
                         const JsonValue* runtime_block = nullptr,
                         const JsonValue* timeline_block = nullptr,
                         const JsonValue* telemetry_block = nullptr);

/// The "provenance" header stamped into every run report and bench
/// baseline: ISO-8601 UTC timestamp, hostname, host_cores, build type, and
/// sanitizer flags.
JsonValue BuildProvenance();

/// The paper's four headline quantities plus per-stage breakdown and the
/// task-seconds summary, as one JSON object (the report's "run" section).
JsonValue RunMetricsToJson(const RunMetrics& metrics);

/// Folds a ThreadPool's counters and latency histograms into `registry`
/// under threadpool_* metric names.
void ExportThreadPoolStats(const ThreadPoolStats& stats,
                           MetricsRegistry* registry);

/// Structural schema check used by tests and by downstream artifact loaders
/// (the BENCH_*.json trajectory): required keys present with the right
/// types.
Status ValidateRunReport(const JsonValue& report);

/// Writes `report` to `path` (pretty-printed), creating parent directories.
Status WriteRunReport(const std::string& path, const JsonValue& report);

}  // namespace obs
}  // namespace surfer

#endif  // SURFER_OBS_RUN_REPORT_H_
