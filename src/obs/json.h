#ifndef SURFER_OBS_JSON_H_
#define SURFER_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "common/result.h"

namespace surfer {
namespace obs {

/// A minimal JSON document model: enough to emit the observability artifacts
/// (run reports, Chrome traces, metric snapshots) and to parse them back in
/// tests and loaders. Objects preserve insertion order so serialized output
/// is deterministic.
class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() : value_(nullptr) {}                       // null
  JsonValue(std::nullptr_t) : value_(nullptr) {}        // NOLINT
  JsonValue(bool b) : value_(b) {}                      // NOLINT
  JsonValue(double d) : value_(d) {}                    // NOLINT
  JsonValue(int i) : value_(static_cast<double>(i)) {}  // NOLINT
  JsonValue(int64_t i) : value_(static_cast<double>(i)) {}   // NOLINT
  JsonValue(uint64_t u) : value_(static_cast<double>(u)) {}  // NOLINT
  JsonValue(const char* s) : value_(std::string(s)) {}  // NOLINT
  JsonValue(std::string s) : value_(std::move(s)) {}    // NOLINT
  JsonValue(Array a) : value_(std::move(a)) {}          // NOLINT
  JsonValue(Object o) : value_(std::move(o)) {}         // NOLINT

  static JsonValue MakeArray() { return JsonValue(Array{}); }
  static JsonValue MakeObject() { return JsonValue(Object{}); }

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_number() const { return std::holds_alternative<double>(value_); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_array() const { return std::holds_alternative<Array>(value_); }
  bool is_object() const { return std::holds_alternative<Object>(value_); }

  bool as_bool() const { return std::get<bool>(value_); }
  double as_number() const { return std::get<double>(value_); }
  const std::string& as_string() const { return std::get<std::string>(value_); }
  const Array& as_array() const { return std::get<Array>(value_); }
  Array& as_array() { return std::get<Array>(value_); }
  const Object& as_object() const { return std::get<Object>(value_); }
  Object& as_object() { return std::get<Object>(value_); }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;

  /// Appends to an array value.
  void Append(JsonValue v) { as_array().push_back(std::move(v)); }
  /// Sets (appends) an object member; does not deduplicate keys.
  void Set(std::string key, JsonValue v) {
    as_object().emplace_back(std::move(key), std::move(v));
  }

  /// Serializes; `indent` > 0 pretty-prints with that many spaces per level.
  std::string Write(int indent = 0) const;

 private:
  void WriteTo(std::string* out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> value_;
};

/// Parses a JSON document (strict: no comments or trailing commas).
Result<JsonValue> ParseJson(std::string_view text);

/// Escapes a string for embedding inside a JSON string literal (no quotes).
std::string JsonEscape(std::string_view s);

}  // namespace obs
}  // namespace surfer

#endif  // SURFER_OBS_JSON_H_
