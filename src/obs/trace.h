#ifndef SURFER_OBS_TRACE_H_
#define SURFER_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/json.h"

// Compiled in by default; -DSURFER_ENABLE_TRACING=OFF (CMake) defines this
// to 0 and turns every recording call and SURFER_TRACE_SCOPE into a no-op.
#ifndef SURFER_TRACING_ENABLED
#define SURFER_TRACING_ENABLED 1
#endif

namespace surfer {
namespace obs {

/// Which clock a trace event's timestamps come from. Wall-clock events time
/// the reproduction process itself (partitioning, per-iteration compute);
/// simulated events replay the JobSimulation's analytic timeline (stages,
/// tasks, faults). The two are exported as separate "processes" in the
/// Chrome trace so they never visually interleave.
enum class TraceClock {
  kWall,
  kSimulated,
};

/// One trace event, Chrome trace-event flavored.
struct TraceEvent {
  std::string name;
  std::string category;
  char phase = 'X';  ///< 'X' complete span, 'i' instant, 'C' counter
  TraceClock clock = TraceClock::kWall;
  double ts_us = 0.0;   ///< event start, microseconds in `clock`
  double dur_us = 0.0;  ///< span duration ('X' only)
  uint32_t tid = 0;     ///< lane: machine id (simulated) / thread (wall)
  double counter_value = 0.0;  ///< sampled gauge value ('C' only)
  std::vector<std::pair<std::string, std::string>> args;
};

/// Aggregate of all complete spans sharing a name (for run reports). The
/// percentiles come from a log2-bucketed histogram (common/histogram.h), so
/// they are bucket upper-bound estimates, good to within a factor of two —
/// plenty to tell "one straggler" from "uniformly slow".
struct SpanStat {
  std::string name;
  TraceClock clock = TraceClock::kWall;
  uint64_t count = 0;
  double total_us = 0.0;
  double min_us = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;
};

/// Thread-safe in-memory trace buffer. Records spans against wall or
/// simulated clocks and exports Chrome trace-event JSON loadable in
/// chrome://tracing or Perfetto. All recording is a no-op when tracing is
/// compiled out.
class Tracer {
 public:
  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// False when SURFER_ENABLE_TRACING=OFF; recording calls then do nothing.
  static constexpr bool CompiledIn() { return SURFER_TRACING_ENABLED != 0; }

  /// Microseconds of wall clock elapsed since this tracer was constructed.
  double WallNowUs() const;

  /// Lane id for the calling thread (stable small integer per thread).
  static uint32_t CurrentThreadLane();

  void RecordComplete(
      TraceClock clock, std::string name, std::string category, double ts_us,
      double dur_us, uint32_t tid,
      std::vector<std::pair<std::string, std::string>> args = {});

  void RecordInstant(
      TraceClock clock, std::string name, std::string category, double ts_us,
      uint32_t tid,
      std::vector<std::pair<std::string, std::string>> args = {});

  /// Records one Chrome counter-event sample ("ph":"C"): a named time series
  /// value at one instant. chrome://tracing and Perfetto render consecutive
  /// samples of the same name as a stacked area chart under the span tracks,
  /// which is how the telemetry plane's gauges land next to the runtime's
  /// superstep spans (see obs/telemetry.h).
  void RecordCounter(TraceClock clock, std::string name, std::string category,
                     double ts_us, uint32_t tid, double value);

  size_t num_events() const;
  std::vector<TraceEvent> Events() const;

  /// Complete spans aggregated by (clock, name), sorted by descending total
  /// time.
  std::vector<SpanStat> SpanSummary() const;

  /// {"traceEvents": [...], "displayTimeUnit": "ms"} with process-name
  /// metadata rows for the wall and simulated clock domains.
  JsonValue ToChromeJson() const;

  /// Writes ToChromeJson() to `path`.
  Status WriteChromeTrace(const std::string& path) const;

  void Clear();

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::chrono::steady_clock::time_point origin_;
};

/// RAII wall-clock span: records a complete event on destruction. A null
/// tracer (or tracing compiled out) makes it a no-op, so call sites never
/// need their own guards.
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, std::string name, std::string category = "",
             std::vector<std::pair<std::string, std::string>> args = {})
      : tracer_(SURFER_TRACING_ENABLED ? tracer : nullptr),
        name_(std::move(name)),
        category_(std::move(category)),
        args_(std::move(args)),
        start_us_(tracer_ != nullptr ? tracer_->WallNowUs() : 0.0) {}

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() {
    if (tracer_ != nullptr) {
      tracer_->RecordComplete(TraceClock::kWall, std::move(name_),
                              std::move(category_), start_us_,
                              tracer_->WallNowUs() - start_us_,
                              Tracer::CurrentThreadLane(), std::move(args_));
    }
  }

 private:
  Tracer* tracer_;
  std::string name_;
  std::string category_;
  std::vector<std::pair<std::string, std::string>> args_;
  double start_us_;
};

}  // namespace obs
}  // namespace surfer

// Declares a wall-clock span covering the rest of the enclosing scope.
#define SURFER_TRACE_CONCAT_INNER_(a, b) a##b
#define SURFER_TRACE_CONCAT_(a, b) SURFER_TRACE_CONCAT_INNER_(a, b)
#if SURFER_TRACING_ENABLED
#define SURFER_TRACE_SCOPE(tracer, name, category)                       \
  ::surfer::obs::ScopedSpan SURFER_TRACE_CONCAT_(_surfer_trace_scope_,   \
                                                 __LINE__)(tracer, name, \
                                                           category)
#else
#define SURFER_TRACE_SCOPE(tracer, name, category) \
  do {                                             \
  } while (false)
#endif

#endif  // SURFER_OBS_TRACE_H_
