#include "obs/bench_gate.h"

#include <cmath>
#include <cstdio>
#include <set>

namespace surfer {
namespace obs {

namespace {

std::string FormatNumber(double d) {
  char buf[64];
  if (d == std::floor(d) && std::fabs(d) < 9.007199254740992e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", d);
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", d);
  }
  return buf;
}

double NumberOr(const JsonValue* v, double fallback) {
  return v != nullptr && v->is_number() ? v->as_number() : fallback;
}

/// Envelope and timing fields that do not describe the workload shape;
/// everything else numeric at the top level (num_vertices, iterations, ...)
/// must match for timings to be comparable.
bool IsWorkloadKey(const std::string& key) {
  static const std::set<std::string> kNonWorkload = {
      "schema_version", "smoke",
      "host_cores",     "points",
      "name",           "sequential_wall_s",
      "wall_s",         "network_bytes",
      "telemetry_overhead_frac",
  };
  return kNonWorkload.find(key) == kNonWorkload.end();
}

/// The key a point is matched on across the two files: thread/worker count.
double PointKey(const JsonValue& point, bool* has_key) {
  for (const char* key : {"threads", "workers"}) {
    if (const JsonValue* v = point.Find(key);
        v != nullptr && v->is_number()) {
      *has_key = true;
      return v->as_number();
    }
  }
  *has_key = false;
  return 0.0;
}

const JsonValue* MatchPoint(const JsonValue::Array& points, double key,
                            bool has_key, size_t index) {
  if (!has_key) {
    return index < points.size() ? &points[index] : nullptr;
  }
  for (const JsonValue& candidate : points) {
    bool candidate_has_key = false;
    if (PointKey(candidate, &candidate_has_key) == key && candidate_has_key) {
      return &candidate;
    }
  }
  return nullptr;
}

void CheckRatio(const std::string& what, const char* unit, double current,
                double baseline, double tolerance, BenchCheckResult* result) {
  if (baseline <= 0.0) {
    result->Note(what + ": baseline is zero, skipping");
    return;
  }
  const double ratio = current / baseline;
  if (ratio > 1.0 + tolerance) {
    result->Fail(what + " regressed: " + FormatNumber(current) + unit +
                 " vs " + FormatNumber(baseline) + unit + " baseline (" +
                 FormatNumber((ratio - 1.0) * 100.0) + "% over, tolerance " +
                 FormatNumber(tolerance * 100.0) + "%)");
  } else if (ratio < 1.0 - tolerance) {
    result->Note(what + " improved: " + FormatNumber(current) + unit +
                 " vs " + FormatNumber(baseline) + unit + " baseline");
  }
}

void CheckTiming(const std::string& what, double current, double baseline,
                 double tolerance, BenchCheckResult* result) {
  CheckRatio(what, "s", current, baseline, tolerance, result);
}

/// Higher-is-better counterpart of CheckRatio for throughput counters:
/// a regression is the current value falling BELOW baseline beyond the
/// host-aware tolerance.
void CheckThroughput(const std::string& what, const char* unit, double current,
                     double baseline, double tolerance,
                     BenchCheckResult* result) {
  if (baseline <= 0.0) {
    result->Note(what + ": baseline is zero, skipping");
    return;
  }
  const double ratio = current / baseline;
  if (ratio < 1.0 / (1.0 + tolerance)) {
    result->Fail(what + " regressed: " + FormatNumber(current) + unit +
                 " vs " + FormatNumber(baseline) + unit + " baseline (" +
                 FormatNumber((1.0 - ratio) * 100.0) + "% below, tolerance " +
                 FormatNumber(tolerance * 100.0) + "%)");
  } else if (ratio > 1.0 + tolerance) {
    result->Note(what + " improved: " + FormatNumber(current) + unit +
                 " vs " + FormatNumber(baseline) + unit + " baseline");
  }
}

/// Nonzero observability drop counters: the recording is partial (rings
/// overwrote or overflowed), never that the run misbehaved. Advisory unless
/// strict, where CI treats an undersized ring as a configuration bug.
void CheckDrops(const std::string& label, const JsonValue& point, bool strict,
                BenchCheckResult* result) {
  for (const char* key : {"trace_events_dropped", "telemetry_samples_dropped"}) {
    const double dropped = NumberOr(point.Find(key), 0.0);
    if (dropped <= 0.0) {
      continue;
    }
    const std::string what = label + "." + key + " is " +
                             FormatNumber(dropped) +
                             ": the recorded window is incomplete";
    if (strict) {
      result->Fail(what + " (strict drops)");
    } else {
      result->Note(what);
    }
  }
}

void DiffNumbersInto(const std::string& path, const JsonValue& a,
                     const JsonValue& b, std::vector<JsonDelta>* out) {
  if (a.is_number() && b.is_number()) {
    if (a.as_number() != b.as_number()) {
      out->push_back(JsonDelta{path, a.as_number(), b.as_number()});
    }
    return;
  }
  if (a.is_object() && b.is_object()) {
    for (const auto& [key, value] : a.as_object()) {
      if (const JsonValue* other = b.Find(key); other != nullptr) {
        DiffNumbersInto(path.empty() ? key : path + "." + key, value, *other,
                        out);
      }
    }
    return;
  }
  if (a.is_array() && b.is_array()) {
    const size_t n = std::min(a.as_array().size(), b.as_array().size());
    for (size_t i = 0; i < n; ++i) {
      DiffNumbersInto(path + "[" + std::to_string(i) + "]", a.as_array()[i],
                      b.as_array()[i], out);
    }
  }
}

}  // namespace

BenchCheckResult CheckBenchBaseline(const JsonValue& current,
                                    const JsonValue& baseline,
                                    const BenchCheckOptions& options) {
  BenchCheckResult result;
  if (!current.is_object() || !baseline.is_object()) {
    result.Fail("both files must be JSON objects");
    return result;
  }

  const JsonValue* current_name = current.Find("name");
  const JsonValue* baseline_name = baseline.Find("name");
  if (current_name == nullptr || !current_name->is_string() ||
      baseline_name == nullptr || !baseline_name->is_string()) {
    result.Fail("both files must carry a string 'name'");
    return result;
  }
  if (current_name->as_string() != baseline_name->as_string()) {
    result.Fail("benchmark names differ: '" + current_name->as_string() +
                "' vs '" + baseline_name->as_string() + "'");
    return result;
  }

  // Correctness gates first: these hold regardless of workload shape.
  const JsonValue* current_points = current.Find("points");
  if (current_points == nullptr || !current_points->is_array()) {
    // A pointless file on both sides is a run-report-style artifact (e.g.
    // the merged distributed cluster report), not a bench baseline: gate
    // its top-level drop counters and stop. A missing points array against
    // a baseline that *has* one stays a hard failure.
    if (baseline.Find("points") == nullptr ||
        !baseline.Find("points")->is_array()) {
      CheckDrops("report", current, options.strict_drops, &result);
      result.Note("no 'points' array on either side; gated as a report "
                  "artifact (drop counters only)");
      return result;
    }
    result.Fail("current file has no 'points' array");
    return result;
  }
  for (size_t i = 0; i < current_points->as_array().size(); ++i) {
    const JsonValue& point = current_points->as_array()[i];
    if (const JsonValue* bit = point.Find("bit_identical");
        bit != nullptr && bit->is_bool() && !bit->as_bool()) {
      result.Fail("points[" + std::to_string(i) +
                  "].bit_identical is false: concurrent result diverged "
                  "from the sequential runner");
    }
    // Batching efficiency: each wire segment is a per-task stream that the
    // pre-batching plane shipped as its own channel send. Pooled batches
    // must coalesce at least 5 of them per send at equal payload bytes, or
    // the message plane has regressed to near per-stream traffic.
    const double segments =
        NumberOr(point.Find("wire_segments_sent"), 0.0);
    const double batches = NumberOr(point.Find("wire_batches_sent"), 0.0);
    if (batches > 0.0 && segments > 0.0 && segments < 5.0 * batches) {
      result.Fail("points[" + std::to_string(i) + "] batching collapsed: " +
                  FormatNumber(segments) + " segments in " +
                  FormatNumber(batches) +
                  " wire batches (< 5x channel-send reduction)");
    }
    // Regroup efficiency: the counting scatter replaced a per-partition
    // stable_sort, and on duplicate-heavy streams (the shape bench_combine
    // records) it must beat it by at least 2x or the sort-free combine plan
    // has lost its reason to exist.
    if (const JsonValue* speedup = point.Find("scatter_speedup");
        speedup != nullptr && speedup->is_number() &&
        speedup->as_number() < 2.0) {
      result.Fail("points[" + std::to_string(i) + "].scatter_speedup is " +
                  FormatNumber(speedup->as_number()) +
                  ": counting scatter no longer beats stable_sort grouping "
                  "by >= 2x");
    }
    CheckDrops("points[" + std::to_string(i) + "]", point,
               options.strict_drops, &result);
  }

  // Decide whether timings are comparable at all.
  bool comparable = true;
  const bool current_smoke = current.Find("smoke") != nullptr &&
                             current.Find("smoke")->is_bool() &&
                             current.Find("smoke")->as_bool();
  const bool baseline_smoke = baseline.Find("smoke") != nullptr &&
                              baseline.Find("smoke")->is_bool() &&
                              baseline.Find("smoke")->as_bool();
  if (current_smoke != baseline_smoke) {
    result.Note("smoke flags differ; timing comparisons skipped");
    comparable = false;
  }
  for (const auto& [key, value] : current.as_object()) {
    if (!value.is_number() || !IsWorkloadKey(key)) {
      continue;
    }
    const JsonValue* other = baseline.Find(key);
    if (other == nullptr || !other->is_number() ||
        other->as_number() != value.as_number()) {
      result.Note("workload field '" + key +
                  "' differs; timing comparisons skipped");
      comparable = false;
    }
  }
  if (!comparable) {
    return result;
  }

  // Host-aware tolerance: CI containers are slower and noisier than the
  // machines baselines were recorded on, and host_cores is recorded exactly
  // so the check can compensate instead of guessing.
  const double current_cores = NumberOr(current.Find("host_cores"), 0.0);
  const double baseline_cores = NumberOr(baseline.Find("host_cores"), 0.0);
  double tolerance = options.rel_tolerance;
  if (current_cores != baseline_cores) {
    tolerance += options.cross_host_extra;
  }
  if ((current_cores > 0.0 && current_cores <= 2.0) ||
      (baseline_cores > 0.0 && baseline_cores <= 2.0)) {
    tolerance += options.small_host_extra;
  }

  if (const JsonValue* cur = current.Find("sequential_wall_s");
      cur != nullptr && cur->is_number()) {
    if (const JsonValue* base = baseline.Find("sequential_wall_s");
        base != nullptr && base->is_number()) {
      CheckTiming("sequential_wall_s", cur->as_number(), base->as_number(),
                  tolerance, &result);
    }
  }

  const JsonValue* baseline_points = baseline.Find("points");
  if (baseline_points == nullptr || !baseline_points->is_array()) {
    result.Note("baseline has no 'points' array; point checks skipped");
    return result;
  }
  for (size_t i = 0; i < current_points->as_array().size(); ++i) {
    const JsonValue& point = current_points->as_array()[i];
    bool has_key = false;
    const double key = PointKey(point, &has_key);
    const std::string label =
        "points[" + (has_key ? FormatNumber(key) + " threads"
                             : std::to_string(i)) +
        "]";
    const JsonValue* base_point =
        MatchPoint(baseline_points->as_array(), key, has_key, i);
    if (base_point == nullptr) {
      result.Note(label + " has no baseline counterpart; skipped");
      continue;
    }
    if (const JsonValue* cur_wall = point.Find("wall_s");
        cur_wall != nullptr && cur_wall->is_number()) {
      if (const JsonValue* base_wall = base_point->Find("wall_s");
          base_wall != nullptr && base_wall->is_number()) {
        CheckTiming(label + ".wall_s", cur_wall->as_number(),
                    base_wall->as_number(), tolerance, &result);
      }
    }
    if (const JsonValue* cur_rss = point.Find("peak_rss_bytes");
        cur_rss != nullptr && cur_rss->is_number() &&
        cur_rss->as_number() > 0.0) {
      if (const JsonValue* base_rss = base_point->Find("peak_rss_bytes");
          base_rss != nullptr && base_rss->is_number() &&
          base_rss->as_number() > 0.0) {
        // Peak RSS gets the same stacked tolerance as wall time: allocator
        // behaviour and host page caching move it between hosts the way
        // scheduler noise moves timings.
        CheckRatio(label + ".peak_rss_bytes", " bytes", cur_rss->as_number(),
                   base_rss->as_number(), tolerance, &result);
      }
    }
    // Serving-plane throughput (bench_serving): QPS is higher-is-better and
    // gets the same host-aware tolerance as wall time.
    if (const JsonValue* cur_qps = point.Find("qps");
        cur_qps != nullptr && cur_qps->is_number() &&
        cur_qps->as_number() > 0.0) {
      if (const JsonValue* base_qps = base_point->Find("qps");
          base_qps != nullptr && base_qps->is_number() &&
          base_qps->as_number() > 0.0) {
        CheckThroughput(label + ".qps", " q/s", cur_qps->as_number(),
                        base_qps->as_number(), tolerance, &result);
      }
    }
    // A cache that stopped hitting is a correctness-adjacent failure, not a
    // timing one: the workload repeats queries by construction, so a zero
    // hit rate against a baseline that cached means the result cache is no
    // longer being consulted.
    if (const JsonValue* cur_hits = point.Find("cache_hit_rate");
        cur_hits != nullptr && cur_hits->is_number()) {
      if (const JsonValue* base_hits = base_point->Find("cache_hit_rate");
          base_hits != nullptr && base_hits->is_number() &&
          base_hits->as_number() > 0.0 && cur_hits->as_number() <= 0.0) {
        result.Fail(label + ".cache_hit_rate is 0 (baseline " +
                    FormatNumber(base_hits->as_number()) +
                    "): the serving result cache went cold");
      }
    }
    if (const JsonValue* cur_rate = point.Find("scatter_msgs_per_sec");
        cur_rate != nullptr && cur_rate->is_number() &&
        cur_rate->as_number() > 0.0) {
      if (const JsonValue* base_rate =
              base_point->Find("scatter_msgs_per_sec");
          base_rate != nullptr && base_rate->is_number() &&
          base_rate->as_number() > 0.0) {
        CheckThroughput(label + ".scatter_msgs_per_sec", " msgs/s",
                        cur_rate->as_number(), base_rate->as_number(),
                        tolerance, &result);
      }
    }
    const JsonValue* cur_bytes = point.Find("network_bytes");
    const JsonValue* base_bytes = base_point->Find("network_bytes");
    if (cur_bytes != nullptr && cur_bytes->is_number() &&
        base_bytes != nullptr && base_bytes->is_number() &&
        cur_bytes->as_number() != base_bytes->as_number()) {
      result.Fail(label + ".network_bytes differs: " +
                  FormatNumber(cur_bytes->as_number()) + " vs " +
                  FormatNumber(base_bytes->as_number()) +
                  " baseline (byte counts are deterministic)");
    }
  }
  return result;
}

std::vector<JsonDelta> DiffNumbers(const JsonValue& a, const JsonValue& b) {
  std::vector<JsonDelta> deltas;
  DiffNumbersInto("", a, b, &deltas);
  return deltas;
}

}  // namespace obs
}  // namespace surfer
