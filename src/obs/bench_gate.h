#ifndef SURFER_OBS_BENCH_GATE_H_
#define SURFER_OBS_BENCH_GATE_H_

#include <string>
#include <vector>

#include "obs/json.h"

namespace surfer {
namespace obs {

/// Version of the BENCH_*.json baseline envelope shared by every benchmark
/// (see bench/bench_common.h for the writer). The envelope carries `name`,
/// `smoke`, `host_cores` and a `points` array; benchmarks add their own
/// workload fields next to them.
inline constexpr int kBenchBaselineSchemaVersion = 1;

/// Tolerances of CheckBenchBaseline. Timing comparisons are relative; the
/// widenings stack, because a 1-core CI container comparing against a
/// different recording host deserves both kinds of slack.
struct BenchCheckOptions {
  /// Base slack for wall-clock fields between same-shaped runs.
  double rel_tolerance = 0.35;
  /// Extra slack when current.host_cores != baseline.host_cores.
  double cross_host_extra = 1.0;
  /// Extra slack when either side ran on <= 2 cores, where scheduler noise
  /// dominates short timings.
  double small_host_extra = 0.65;
  /// Escalates nonzero observability drop counters (trace_events_dropped,
  /// telemetry_samples_dropped) from advisory notes to hard failures. Off
  /// by default because drops mean the *recording* is partial, not that the
  /// run misbehaved; CI smoke runs turn it on, where a drop means the ring
  /// capacities are undersized for even the smallest workload.
  bool strict_drops = false;
};

/// Verdict of one baseline check: hard failures (regressions, broken
/// invariants) and advisory notes (skipped comparisons, improvements).
struct BenchCheckResult {
  bool ok = true;
  std::vector<std::string> failures;
  std::vector<std::string> notes;

  void Fail(std::string what) {
    ok = false;
    failures.push_back(std::move(what));
  }
  void Note(std::string what) { notes.push_back(std::move(what)); }
};

/// Compares a freshly produced BENCH_*.json against a committed baseline.
///
/// Hard failures:
///   - mismatched benchmark `name`;
///   - any current point with `bit_identical` == false (correctness, never
///     subject to tolerance);
///   - `network_bytes` differing where both sides record it (byte counts
///     are deterministic, so equality is exact);
///   - wall-clock fields (`sequential_wall_s`, points' `wall_s`) regressing
///     beyond the host-aware tolerance;
///   - points' `peak_rss_bytes` regressing beyond the same host-aware
///     tolerance (memory varies with allocator and host like time does);
///   - nonzero drop counters when options.strict_drops is set (an advisory
///     note otherwise).
///
/// Timing comparisons are skipped (with a note) when the two files describe
/// different workloads — different smoke flags or any differing numeric
/// workload field (num_vertices, num_partitions, ...) — since comparing
/// timings across workloads is meaningless. Points are matched by their
/// `threads` or `workers` key when present, by position otherwise; points
/// present on only one side produce notes, not failures.
BenchCheckResult CheckBenchBaseline(const JsonValue& current,
                                    const JsonValue& baseline,
                                    const BenchCheckOptions& options = {});

/// One numeric leaf that differs between two JSON documents.
struct JsonDelta {
  std::string path;  ///< dotted, with [i] for array indices
  double before = 0.0;
  double after = 0.0;
};

/// Recursively collects every numeric leaf present in both documents whose
/// values differ (`a` is "before", `b` is "after"), in `a`'s document
/// order. Keys or indices present on only one side are skipped: the diff is
/// about shared quantities.
std::vector<JsonDelta> DiffNumbers(const JsonValue& a, const JsonValue& b);

}  // namespace obs
}  // namespace surfer

#endif  // SURFER_OBS_BENCH_GATE_H_
