#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace surfer {
namespace obs {

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (!is_object()) {
    return nullptr;
  }
  for (const auto& [k, v] : as_object()) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void WriteNumber(std::string* out, double d) {
  if (!std::isfinite(d)) {
    // JSON has no NaN/Inf; null is the conventional substitute.
    *out += "null";
    return;
  }
  // Integers within the double-exact range print without a fraction.
  if (d == std::floor(d) && std::fabs(d) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", d);
    *out += buf;
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  *out += buf;
}

void Indent(std::string* out, int indent, int depth) {
  if (indent > 0) {
    out->push_back('\n');
    out->append(static_cast<size_t>(indent) * depth, ' ');
  }
}

}  // namespace

void JsonValue::WriteTo(std::string* out, int indent, int depth) const {
  if (is_null()) {
    *out += "null";
  } else if (is_bool()) {
    *out += as_bool() ? "true" : "false";
  } else if (is_number()) {
    WriteNumber(out, as_number());
  } else if (is_string()) {
    out->push_back('"');
    *out += JsonEscape(as_string());
    out->push_back('"');
  } else if (is_array()) {
    const Array& a = as_array();
    out->push_back('[');
    for (size_t i = 0; i < a.size(); ++i) {
      if (i > 0) {
        out->push_back(',');
      }
      Indent(out, indent, depth + 1);
      a[i].WriteTo(out, indent, depth + 1);
    }
    if (!a.empty()) {
      Indent(out, indent, depth);
    }
    out->push_back(']');
  } else {
    const Object& o = as_object();
    out->push_back('{');
    for (size_t i = 0; i < o.size(); ++i) {
      if (i > 0) {
        out->push_back(',');
      }
      Indent(out, indent, depth + 1);
      out->push_back('"');
      *out += JsonEscape(o[i].first);
      *out += indent > 0 ? "\": " : "\":";
      o[i].second.WriteTo(out, indent, depth + 1);
    }
    if (!o.empty()) {
      Indent(out, indent, depth);
    }
    out->push_back('}');
  }
}

std::string JsonValue::Write(int indent) const {
  std::string out;
  WriteTo(&out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    SURFER_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after document");
    }
    return value;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::Corruption("json parse error at offset " +
                              std::to_string(pos_) + ": " + message);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) {
      return Error("unexpected end of input");
    }
    const char c = text_[pos_];
    if (c == '{') {
      return ParseObject();
    }
    if (c == '[') {
      return ParseArray();
    }
    if (c == '"') {
      SURFER_ASSIGN_OR_RETURN(std::string s, ParseString());
      return JsonValue(std::move(s));
    }
    if (ConsumeLiteral("true")) {
      return JsonValue(true);
    }
    if (ConsumeLiteral("false")) {
      return JsonValue(false);
    }
    if (ConsumeLiteral("null")) {
      return JsonValue(nullptr);
    }
    return ParseNumber();
  }

  Result<JsonValue> ParseObject() {
    ++pos_;  // '{'
    JsonValue obj = JsonValue::MakeObject();
    SkipWhitespace();
    if (Consume('}')) {
      return obj;
    }
    for (;;) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      SURFER_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) {
        return Error("expected ':' after object key");
      }
      SURFER_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
      obj.Set(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume('}')) {
        return obj;
      }
      if (!Consume(',')) {
        return Error("expected ',' or '}' in object");
      }
    }
  }

  Result<JsonValue> ParseArray() {
    ++pos_;  // '['
    JsonValue arr = JsonValue::MakeArray();
    SkipWhitespace();
    if (Consume(']')) {
      return arr;
    }
    for (;;) {
      SURFER_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
      arr.Append(std::move(value));
      SkipWhitespace();
      if (Consume(']')) {
        return arr;
      }
      if (!Consume(',')) {
        return Error("expected ',' or ']' in array");
      }
    }
  }

  Result<std::string> ParseString() {
    ++pos_;  // opening quote
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Error("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("invalid \\u escape");
            }
          }
          // UTF-8 encode (no surrogate-pair handling; the artifacts this
          // parser reads are ASCII except for user-supplied labels).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
    return Error("unterminated string");
  }

  Result<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Error("expected a value");
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      return Error("malformed number '" + token + "'");
    }
    if (!std::isfinite(d)) {
      // strtod happily overflows "1e999" to inf; JSON numbers must stay
      // finite (the writer maps non-finite to null for the same reason).
      return Error("number out of range '" + token + "'");
    }
    return JsonValue(d);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace obs
}  // namespace surfer
