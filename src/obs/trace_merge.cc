#include "obs/trace_merge.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

namespace surfer {
namespace obs {

namespace {

constexpr int kPidStride = 1000;  ///< lane block reserved per input process

// JsonValue::Set appends without deduplicating, so rewriting a field on a
// copied event must replace the existing entry in place — otherwise the
// output carries duplicate keys and readers see whichever one their parser
// happens to keep.
void Upsert(JsonValue* object, std::string_view key, JsonValue value) {
  for (auto& [k, v] : object->as_object()) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  object->Set(std::string(key), std::move(value));
}

double OriginOf(const JsonValue& trace, bool* has) {
  const JsonValue* origin = trace.Find("origin_unix_us");
  if (origin != nullptr && origin->is_number()) {
    *has = true;
    return origin->as_number();
  }
  *has = false;
  return 0.0;
}

}  // namespace

Result<JsonValue> MergeChromeTraces(
    const std::vector<TraceMergeInput>& inputs) {
  if (inputs.empty()) {
    return Status::InvalidArgument("no traces to merge");
  }
  // Align onto the earliest anchor — but only when every input has one. A
  // partial shift would *misalign* the anchorless inputs relative to the
  // shifted ones, which is worse than leaving all clocks local.
  bool align = true;
  double min_origin = 0.0;
  for (size_t i = 0; i < inputs.size(); ++i) {
    bool has = false;
    const double origin = OriginOf(inputs[i].trace, &has);
    if (!has) {
      align = false;
      break;
    }
    if (i == 0 || origin < min_origin) {
      min_origin = origin;
    }
  }

  JsonValue merged_events = JsonValue::MakeArray();
  for (size_t i = 0; i < inputs.size(); ++i) {
    const TraceMergeInput& input = inputs[i];
    const JsonValue* events = input.trace.Find("traceEvents");
    if (events == nullptr || !events->is_array()) {
      return Status::InvalidArgument("input " + std::to_string(i) + " (" +
                                     input.label +
                                     ") has no traceEvents array");
    }
    bool has_origin = false;
    const double offset =
        align ? OriginOf(input.trace, &has_origin) - min_origin : 0.0;
    for (const JsonValue& event : events->as_array()) {
      if (!event.is_object()) {
        continue;
      }
      JsonValue out = event;
      const JsonValue* pid = event.Find("pid");
      const int64_t lane =
          static_cast<int64_t>(i) * kPidStride +
          (pid != nullptr && pid->is_number()
               ? static_cast<int64_t>(pid->as_number())
               : 0);
      Upsert(&out, "pid", lane);
      const JsonValue* name = event.Find("name");
      const JsonValue* ph = event.Find("ph");
      const bool is_meta = ph != nullptr && ph->is_string() &&
                           ph->as_string() == "M";
      if (is_meta && name != nullptr && name->is_string() &&
          name->as_string() == "process_name") {
        const JsonValue* args = event.Find("args");
        const JsonValue* lane_name =
            args != nullptr ? args->Find("name") : nullptr;
        JsonValue new_args = JsonValue::MakeObject();
        new_args.Set("name",
                     lane_name != nullptr && lane_name->is_string()
                         ? input.label + ": " + lane_name->as_string()
                         : input.label);
        Upsert(&out, "args", std::move(new_args));
      } else if (!is_meta && offset != 0.0) {
        const JsonValue* ts = event.Find("ts");
        if (ts != nullptr && ts->is_number()) {
          Upsert(&out, "ts", ts->as_number() + offset);
        }
      }
      merged_events.Append(std::move(out));
    }
  }

  JsonValue merged = JsonValue::MakeObject();
  merged.Set("traceEvents", std::move(merged_events));
  merged.Set("displayTimeUnit", "ms");
  merged.Set("merged_processes", static_cast<uint64_t>(inputs.size()));
  merged.Set("aligned", align);
  return merged;
}

}  // namespace obs
}  // namespace surfer
