#include "obs/trace_merge.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

namespace surfer {
namespace obs {

namespace {

constexpr int kPidStride = 1000;  ///< lane block reserved per input process

// JsonValue::Set appends without deduplicating, so rewriting a field on a
// copied event must replace the existing entry in place — otherwise the
// output carries duplicate keys and readers see whichever one their parser
// happens to keep.
void Upsert(JsonValue* object, std::string_view key, JsonValue value) {
  for (auto& [k, v] : object->as_object()) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  object->Set(std::string(key), std::move(value));
}

double OriginOf(const JsonValue& trace, bool* has) {
  const JsonValue* origin = trace.Find("origin_unix_us");
  if (origin != nullptr && origin->is_number()) {
    *has = true;
    return origin->as_number();
  }
  *has = false;
  return 0.0;
}

/// One input's alignment anchor: its wall-clock origin plus (when present)
/// the handshake-estimated clock-offset table from its "clock_sync" block.
struct Anchor {
  bool has_origin = false;
  double origin_us = 0.0;
  bool has_sync = false;
  uint32_t proc = 0;
  std::vector<double> offsets_us;  ///< [j] = clock_j - this shard's clock
};

Anchor AnchorOf(const JsonValue& trace) {
  Anchor anchor;
  anchor.origin_us = OriginOf(trace, &anchor.has_origin);
  const JsonValue* sync = trace.Find("clock_sync");
  if (sync == nullptr || !sync->is_object()) {
    return anchor;
  }
  const JsonValue* proc = sync->Find("proc");
  const JsonValue* offsets = sync->Find("offsets_us");
  if (proc == nullptr || !proc->is_number() || offsets == nullptr ||
      !offsets->is_array()) {
    return anchor;
  }
  anchor.has_sync = true;
  anchor.proc = static_cast<uint32_t>(proc->as_number());
  for (const JsonValue& entry : offsets->as_array()) {
    anchor.offsets_us.push_back(entry.is_number() ? entry.as_number() : 0.0);
  }
  return anchor;
}

}  // namespace

Result<JsonValue> MergeChromeTraces(
    const std::vector<TraceMergeInput>& inputs) {
  if (inputs.empty()) {
    return Status::InvalidArgument("no traces to merge");
  }
  // Pick the best common clock (see header): offset-corrected anchors when
  // every shard has an offset table covering the reference process, raw
  // wall-clock anchors when it only has origins, no shift otherwise — a
  // partial shift would *misalign* the anchorless inputs relative to the
  // shifted ones, which is worse than leaving all clocks local.
  std::vector<Anchor> anchors;
  anchors.reserve(inputs.size());
  bool align_origin = true;
  bool align_offset = true;
  JsonValue unanchored = JsonValue::MakeArray();
  for (size_t i = 0; i < inputs.size(); ++i) {
    anchors.push_back(AnchorOf(inputs[i].trace));
    if (!anchors.back().has_origin) {
      align_origin = false;
      unanchored.Append(inputs[i].label);
    }
    if (!anchors.back().has_sync) {
      align_offset = false;
    }
  }
  align_offset = align_offset && align_origin;
  const uint32_t ref_proc = anchors.empty() ? 0 : anchors[0].proc;
  if (align_offset) {
    for (const Anchor& anchor : anchors) {
      if (ref_proc >= anchor.offsets_us.size()) {
        align_offset = false;  // table does not cover the reference clock
        break;
      }
    }
  }
  // A shard's anchor on the common clock: its origin, moved onto the
  // reference process's clock by the estimated offset when available.
  std::vector<double> bases(inputs.size(), 0.0);
  double min_base = 0.0;
  for (size_t i = 0; i < inputs.size(); ++i) {
    bases[i] = anchors[i].origin_us +
               (align_offset ? anchors[i].offsets_us[ref_proc] : 0.0);
    if (i == 0 || bases[i] < min_base) {
      min_base = bases[i];
    }
  }

  JsonValue merged_events = JsonValue::MakeArray();
  for (size_t i = 0; i < inputs.size(); ++i) {
    const TraceMergeInput& input = inputs[i];
    const JsonValue* events = input.trace.Find("traceEvents");
    if (events == nullptr || !events->is_array()) {
      return Status::InvalidArgument("input " + std::to_string(i) + " (" +
                                     input.label +
                                     ") has no traceEvents array");
    }
    const double offset = align_origin ? bases[i] - min_base : 0.0;
    for (const JsonValue& event : events->as_array()) {
      if (!event.is_object()) {
        continue;
      }
      JsonValue out = event;
      const JsonValue* pid = event.Find("pid");
      const int64_t lane =
          static_cast<int64_t>(i) * kPidStride +
          (pid != nullptr && pid->is_number()
               ? static_cast<int64_t>(pid->as_number())
               : 0);
      Upsert(&out, "pid", lane);
      const JsonValue* name = event.Find("name");
      const JsonValue* ph = event.Find("ph");
      const bool is_meta = ph != nullptr && ph->is_string() &&
                           ph->as_string() == "M";
      if (is_meta && name != nullptr && name->is_string() &&
          name->as_string() == "process_name") {
        const JsonValue* args = event.Find("args");
        const JsonValue* lane_name =
            args != nullptr ? args->Find("name") : nullptr;
        JsonValue new_args = JsonValue::MakeObject();
        new_args.Set("name",
                     lane_name != nullptr && lane_name->is_string()
                         ? input.label + ": " + lane_name->as_string()
                         : input.label);
        Upsert(&out, "args", std::move(new_args));
      } else if (!is_meta && offset != 0.0) {
        const JsonValue* ts = event.Find("ts");
        if (ts != nullptr && ts->is_number()) {
          Upsert(&out, "ts", ts->as_number() + offset);
        }
      }
      merged_events.Append(std::move(out));
    }
  }

  JsonValue merged = JsonValue::MakeObject();
  merged.Set("traceEvents", std::move(merged_events));
  merged.Set("displayTimeUnit", "ms");
  merged.Set("merged_processes", static_cast<uint64_t>(inputs.size()));
  merged.Set("aligned", align_origin);
  merged.Set("alignment", align_offset   ? "offset"
                          : align_origin ? "origin"
                                         : "none");
  merged.Set("unanchored", std::move(unanchored));
  return merged;
}

}  // namespace obs
}  // namespace surfer
