#include "obs/run_report.h"

#include <cstdio>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <thread>

#include <unistd.h>

// Stamped by src/obs/CMakeLists.txt so provenance headers can state how the
// producing binary was built.
#ifndef SURFER_BUILD_TYPE_NAME
#define SURFER_BUILD_TYPE_NAME "unknown"
#endif
#ifndef SURFER_SANITIZE_NAME
#define SURFER_SANITIZE_NAME ""
#endif

namespace surfer {
namespace obs {

namespace {

JsonValue HistogramSummaryJson(const Histogram& h) {
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("count", static_cast<uint64_t>(h.count()));
  obj.Set("mean", h.Mean());
  obj.Set("min", h.min());
  obj.Set("max", h.max());
  obj.Set("p50", h.Percentile(50));
  obj.Set("p99", h.Percentile(99));
  return obj;
}

const char* ClockName(TraceClock clock) {
  return clock == TraceClock::kWall ? "wall" : "simulated";
}

Status Expect(bool condition, const std::string& what) {
  if (!condition) {
    return Status::Corruption("run report schema violation: " + what);
  }
  return Status::OK();
}

Status RequireNumber(const JsonValue& obj, const std::string& key) {
  const JsonValue* v = obj.Find(key);
  return Expect(v != nullptr && v->is_number(), "missing number '" + key + "'");
}

}  // namespace

JsonValue BuildProvenance() {
  JsonValue provenance = JsonValue::MakeObject();
  char timestamp[32] = "unknown";
  const std::time_t now = std::time(nullptr);
  std::tm utc{};
  if (gmtime_r(&now, &utc) != nullptr) {
    std::strftime(timestamp, sizeof(timestamp), "%Y-%m-%dT%H:%M:%SZ", &utc);
  }
  provenance.Set("timestamp", std::string(timestamp));
  char hostname[256] = "unknown";
  if (gethostname(hostname, sizeof(hostname)) != 0) {
    std::snprintf(hostname, sizeof(hostname), "unknown");
  }
  hostname[sizeof(hostname) - 1] = '\0';
  provenance.Set("hostname", std::string(hostname));
  provenance.Set("host_cores",
                 static_cast<uint64_t>(std::thread::hardware_concurrency()));
  provenance.Set("build_type", std::string(SURFER_BUILD_TYPE_NAME));
  provenance.Set("sanitizer", std::string(SURFER_SANITIZE_NAME));
  return provenance;
}

JsonValue RunMetricsToJson(const RunMetrics& metrics) {
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("response_time_s", metrics.response_time_s);
  obj.Set("total_machine_time_s", metrics.total_machine_time_s);
  obj.Set("network_bytes", metrics.network_bytes);
  obj.Set("disk_bytes", metrics.disk_bytes);
  JsonValue stages = JsonValue::MakeArray();
  for (const StageMetrics& stage : metrics.stages) {
    JsonValue s = JsonValue::MakeObject();
    s.Set("name", stage.name);
    s.Set("duration_s", stage.duration_s);
    s.Set("busy_machine_seconds", stage.busy_machine_seconds);
    s.Set("network_bytes", stage.network_bytes);
    s.Set("disk_read_bytes", stage.disk_read_bytes);
    s.Set("disk_write_bytes", stage.disk_write_bytes);
    s.Set("num_tasks", static_cast<uint64_t>(stage.num_tasks));
    s.Set("num_reexecuted_tasks",
          static_cast<uint64_t>(stage.num_reexecuted_tasks));
    stages.Append(std::move(s));
  }
  obj.Set("stages", std::move(stages));
  obj.Set("task_seconds", HistogramSummaryJson(metrics.task_seconds));
  return obj;
}

void ExportThreadPoolStats(const ThreadPoolStats& stats,
                           MetricsRegistry* registry) {
  if (registry == nullptr) {
    return;
  }
  registry->CounterRef("threadpool_tasks_submitted")
      .Increment(stats.tasks_submitted);
  registry->CounterRef("threadpool_tasks_completed")
      .Increment(stats.tasks_completed);
  registry->GaugeRef("threadpool_max_queue_depth")
      .Set(static_cast<double>(stats.max_queue_depth));
  registry->HistogramRef("threadpool_queue_wait_seconds")
      .Merge(stats.queue_wait_seconds);
  registry->HistogramRef("threadpool_task_run_seconds")
      .Merge(stats.task_run_seconds);
}

JsonValue BuildRunReport(const RunReportOptions& options,
                         const RunMetrics* run,
                         const MetricsRegistry* registry,
                         const Tracer* tracer,
                         const JsonValue* runtime_block,
                         const JsonValue* timeline_block,
                         const JsonValue* telemetry_block) {
  JsonValue report = JsonValue::MakeObject();
  report.Set("schema_version", kRunReportSchemaVersion);
  report.Set("name", options.name);
  report.Set("provenance", BuildProvenance());
  if (!options.notes.empty()) {
    report.Set("notes", options.notes);
  }
  if (run != nullptr) {
    report.Set("run", RunMetricsToJson(*run));
  }
  if (registry != nullptr) {
    report.Set("metrics", registry->ToJson());
  }
  if (tracer != nullptr) {
    JsonValue trace = JsonValue::MakeObject();
    trace.Set("tracing_compiled_in", Tracer::CompiledIn());
    trace.Set("num_events", static_cast<uint64_t>(tracer->num_events()));
    JsonValue spans = JsonValue::MakeArray();
    for (const SpanStat& stat : tracer->SpanSummary()) {
      JsonValue s = JsonValue::MakeObject();
      s.Set("name", stat.name);
      s.Set("clock", ClockName(stat.clock));
      s.Set("count", stat.count);
      s.Set("total_s", stat.total_us / 1e6);
      s.Set("min_s", stat.min_us / 1e6);
      s.Set("p50_s", stat.p50_us / 1e6);
      s.Set("p99_s", stat.p99_us / 1e6);
      s.Set("max_s", stat.max_us / 1e6);
      spans.Append(std::move(s));
    }
    trace.Set("spans", std::move(spans));
    report.Set("trace", std::move(trace));
  }
  if (runtime_block != nullptr) {
    report.Set("runtime", *runtime_block);
  }
  if (timeline_block != nullptr) {
    report.Set("timeline", *timeline_block);
  }
  if (telemetry_block != nullptr) {
    report.Set("telemetry", *telemetry_block);
  }
  return report;
}

Status ValidateRunReport(const JsonValue& report) {
  SURFER_RETURN_IF_ERROR(Expect(report.is_object(), "root must be an object"));
  const JsonValue* version = report.Find("schema_version");
  SURFER_RETURN_IF_ERROR(Expect(version != nullptr && version->is_number(),
                                "missing schema_version"));
  const int v = static_cast<int>(version->as_number());
  SURFER_RETURN_IF_ERROR(Expect(v >= kMinSupportedRunReportSchemaVersion &&
                                    v <= kRunReportSchemaVersion,
                                "unsupported schema_version"));
  const JsonValue* name = report.Find("name");
  SURFER_RETURN_IF_ERROR(
      Expect(name != nullptr && name->is_string() && !name->as_string().empty(),
             "missing name"));

  // Optional in every version (v1/v2 artifacts predate it), but when present
  // the identifying fields must be well-formed strings.
  if (const JsonValue* provenance = report.Find("provenance");
      provenance != nullptr) {
    SURFER_RETURN_IF_ERROR(
        Expect(provenance->is_object(), "provenance must be an object"));
    for (const char* key : {"timestamp", "hostname", "build_type"}) {
      const JsonValue* v = provenance->Find(key);
      SURFER_RETURN_IF_ERROR(Expect(v != nullptr && v->is_string(),
                                    std::string("provenance.") + key));
    }
    SURFER_RETURN_IF_ERROR(RequireNumber(*provenance, "host_cores"));
  }

  if (const JsonValue* run = report.Find("run"); run != nullptr) {
    SURFER_RETURN_IF_ERROR(Expect(run->is_object(), "run must be an object"));
    for (const char* key : {"response_time_s", "total_machine_time_s",
                            "network_bytes", "disk_bytes"}) {
      SURFER_RETURN_IF_ERROR(RequireNumber(*run, key));
    }
    const JsonValue* stages = run->Find("stages");
    SURFER_RETURN_IF_ERROR(
        Expect(stages != nullptr && stages->is_array(), "run.stages missing"));
    for (const JsonValue& stage : stages->as_array()) {
      SURFER_RETURN_IF_ERROR(
          Expect(stage.is_object(), "stage must be an object"));
      const JsonValue* stage_name = stage.Find("name");
      SURFER_RETURN_IF_ERROR(Expect(
          stage_name != nullptr && stage_name->is_string(), "stage.name"));
      for (const char* key :
           {"duration_s", "busy_machine_seconds", "network_bytes",
            "disk_read_bytes", "disk_write_bytes", "num_tasks"}) {
        SURFER_RETURN_IF_ERROR(RequireNumber(stage, key));
      }
    }
    const JsonValue* task_seconds = run->Find("task_seconds");
    SURFER_RETURN_IF_ERROR(
        Expect(task_seconds != nullptr && task_seconds->is_object(),
               "run.task_seconds missing"));
    SURFER_RETURN_IF_ERROR(RequireNumber(*task_seconds, "count"));
  }

  if (const JsonValue* metrics = report.Find("metrics"); metrics != nullptr) {
    SURFER_RETURN_IF_ERROR(
        Expect(metrics->is_object(), "metrics must be an object"));
    for (const char* section : {"counters", "gauges", "histograms"}) {
      const JsonValue* arr = metrics->Find(section);
      SURFER_RETURN_IF_ERROR(
          Expect(arr != nullptr && arr->is_array(),
                 std::string("metrics.") + section + " missing"));
      for (const JsonValue& entry : arr->as_array()) {
        const JsonValue* entry_name = entry.Find("name");
        SURFER_RETURN_IF_ERROR(
            Expect(entry_name != nullptr && entry_name->is_string(),
                   std::string("metrics.") + section + "[].name"));
      }
    }
  }

  if (const JsonValue* trace = report.Find("trace"); trace != nullptr) {
    SURFER_RETURN_IF_ERROR(
        Expect(trace->is_object(), "trace must be an object"));
    SURFER_RETURN_IF_ERROR(RequireNumber(*trace, "num_events"));
    const JsonValue* spans = trace->Find("spans");
    SURFER_RETURN_IF_ERROR(Expect(spans != nullptr && spans->is_array(),
                                  "trace.spans missing"));
    for (const JsonValue& span : spans->as_array()) {
      const JsonValue* clock = span.Find("clock");
      SURFER_RETURN_IF_ERROR(Expect(
          clock != nullptr && clock->is_string() &&
              (clock->as_string() == "wall" ||
               clock->as_string() == "simulated"),
          "trace.spans[].clock must be 'wall' or 'simulated'"));
      SURFER_RETURN_IF_ERROR(RequireNumber(span, "count"));
      SURFER_RETURN_IF_ERROR(RequireNumber(span, "total_s"));
    }
  }

  if (const JsonValue* runtime = report.Find("runtime"); runtime != nullptr) {
    SURFER_RETURN_IF_ERROR(
        Expect(runtime->is_object(), "runtime must be an object"));
    for (const char* key :
         {"num_workers", "num_machines", "iterations", "tasks_executed",
          "tasks_reexecuted", "machine_failures", "messages_sent",
          "buffers_sent", "send_stalls", "barrier_wait_seconds",
          "barrier_generations", "wall_seconds", "network_bytes"}) {
      SURFER_RETURN_IF_ERROR(RequireNumber(*runtime, key));
    }
    const JsonValue* channels = runtime->Find("channels");
    SURFER_RETURN_IF_ERROR(Expect(channels != nullptr && channels->is_array(),
                                  "runtime.channels missing"));
    for (const JsonValue& channel : channels->as_array()) {
      SURFER_RETURN_IF_ERROR(
          Expect(channel.is_object(), "runtime channel must be an object"));
      for (const char* key :
           {"src", "dst", "capacity", "bytes", "sends", "receives"}) {
        SURFER_RETURN_IF_ERROR(RequireNumber(channel, key));
      }
    }
    for (const char* key : {"channel_depth", "barrier_wait"}) {
      const JsonValue* hist = runtime->Find(key);
      SURFER_RETURN_IF_ERROR(
          Expect(hist != nullptr && hist->is_object(),
                 std::string("runtime.") + key + " missing"));
      SURFER_RETURN_IF_ERROR(RequireNumber(*hist, "count"));
    }
  }

  if (const JsonValue* timeline = report.Find("timeline");
      timeline != nullptr) {
    SURFER_RETURN_IF_ERROR(
        Expect(timeline->is_object(), "timeline must be an object"));
    const JsonValue* steps = timeline->Find("steps");
    SURFER_RETURN_IF_ERROR(Expect(steps != nullptr && steps->is_array(),
                                  "timeline.steps missing"));
    for (const JsonValue& step : steps->as_array()) {
      SURFER_RETURN_IF_ERROR(
          Expect(step.is_object(), "timeline step must be an object"));
      SURFER_RETURN_IF_ERROR(RequireNumber(step, "iteration"));
      const JsonValue* stage = step.Find("stage");
      SURFER_RETURN_IF_ERROR(Expect(
          stage != nullptr && stage->is_string() &&
              (stage->as_string() == "transfer" ||
               stage->as_string() == "combine"),
          "timeline.steps[].stage must be 'transfer' or 'combine'"));
      const JsonValue* machines = step.Find("machines");
      SURFER_RETURN_IF_ERROR(
          Expect(machines != nullptr && machines->is_array(),
                 "timeline.steps[].machines missing"));
      for (const JsonValue& machine : machines->as_array()) {
        for (const char* key : {"machine", "compute_s", "serialize_s",
                                "blocked_s", "barrier_s", "busy_s"}) {
          SURFER_RETURN_IF_ERROR(RequireNumber(machine, key));
        }
      }
      const JsonValue* straggler = step.Find("straggler");
      SURFER_RETURN_IF_ERROR(
          Expect(straggler != nullptr && straggler->is_object(),
                 "timeline.steps[].straggler missing"));
      for (const char* key : {"max_busy_s", "mean_busy_s", "skew"}) {
        SURFER_RETURN_IF_ERROR(RequireNumber(*straggler, key));
      }
    }
    const JsonValue* critical = timeline->Find("critical_path");
    SURFER_RETURN_IF_ERROR(
        Expect(critical != nullptr && critical->is_object(),
               "timeline.critical_path missing"));
    SURFER_RETURN_IF_ERROR(RequireNumber(*critical, "total_busy_s"));
    const JsonValue* path_steps = critical->Find("steps");
    SURFER_RETURN_IF_ERROR(
        Expect(path_steps != nullptr && path_steps->is_array(),
               "timeline.critical_path.steps missing"));
    for (const JsonValue& entry : path_steps->as_array()) {
      SURFER_RETURN_IF_ERROR(RequireNumber(entry, "step"));
      SURFER_RETURN_IF_ERROR(RequireNumber(entry, "busy_s"));
    }
  }

  // Schema v3: the flight recorder's time series. Optional (telemetry off,
  // or a v1/v2 artifact); when present the sampling envelope and per-series
  // summaries must be well-formed. A series' "samples" array is itself
  // optional — all-zero series are exported summary-only.
  if (const JsonValue* telemetry = report.Find("telemetry");
      telemetry != nullptr) {
    SURFER_RETURN_IF_ERROR(
        Expect(telemetry->is_object(), "telemetry must be an object"));
    for (const char* key :
         {"period_seconds", "samples_taken", "samples_dropped"}) {
      SURFER_RETURN_IF_ERROR(RequireNumber(*telemetry, key));
    }
    const JsonValue* series = telemetry->Find("series");
    SURFER_RETURN_IF_ERROR(Expect(series != nullptr && series->is_array(),
                                  "telemetry.series missing"));
    for (const JsonValue& entry : series->as_array()) {
      SURFER_RETURN_IF_ERROR(
          Expect(entry.is_object(), "telemetry series must be an object"));
      const JsonValue* series_name = entry.Find("name");
      SURFER_RETURN_IF_ERROR(
          Expect(series_name != nullptr && series_name->is_string(),
                 "telemetry.series[].name"));
      for (const char* key :
           {"count", "samples_dropped", "min", "mean", "max", "p99"}) {
        SURFER_RETURN_IF_ERROR(RequireNumber(entry, key));
      }
      if (const JsonValue* samples = entry.Find("samples");
          samples != nullptr) {
        SURFER_RETURN_IF_ERROR(Expect(
            samples->is_array(), "telemetry.series[].samples must be array"));
        for (const JsonValue& sample : samples->as_array()) {
          SURFER_RETURN_IF_ERROR(
              Expect(sample.is_array() && sample.as_array().size() == 2 &&
                         sample.as_array()[0].is_number() &&
                         sample.as_array()[1].is_number(),
                     "telemetry sample must be a [t_us, value] pair"));
        }
      }
    }
  }
  return Status::OK();
}

Status WriteRunReport(const std::string& path, const JsonValue& report) {
  std::error_code ec;
  const std::filesystem::path fs_path(path);
  if (fs_path.has_parent_path()) {
    std::filesystem::create_directories(fs_path.parent_path(), ec);
    if (ec) {
      return Status::IOError("cannot create directory for " + path + ": " +
                             ec.message());
    }
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return Status::IOError("cannot open run report " + path);
  }
  out << report.Write(/*indent=*/2) << "\n";
  out.close();
  if (!out.good()) {
    return Status::IOError("failed writing run report " + path);
  }
  return Status::OK();
}

}  // namespace obs
}  // namespace surfer
