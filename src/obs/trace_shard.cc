#include "obs/trace_shard.h"

#include <utility>

namespace surfer {
namespace obs {

namespace {

size_t RoundUpPow2(size_t n) {
  size_t p = 2;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

}  // namespace

TraceShard::TraceShard(size_t capacity)
    : slots_(RoundUpPow2(capacity)), mask_(slots_.size() - 1) {}

size_t TraceShard::Drain(std::vector<ShardEvent>* out) {
  const uint64_t tail = tail_.load(std::memory_order_relaxed);
  const uint64_t head = head_.load(std::memory_order_acquire);
  for (uint64_t i = tail; i < head; ++i) {
    out->push_back(slots_[i & mask_]);
  }
  tail_.store(head, std::memory_order_release);
  return static_cast<size_t>(head - tail);
}

ShardedTracer::ShardedTracer(Tracer* sink, size_t num_shards,
                             size_t shard_capacity)
    : sink_(sink) {
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<TraceShard>(shard_capacity));
  }
}

uint32_t ShardedTracer::InternName(std::string name, std::string category,
                                   std::string arg_key) {
  std::lock_guard<std::mutex> lock(intern_mu_);
  for (uint32_t id = 0; id < names_.size(); ++id) {
    if (names_[id].name == name && names_[id].category == category &&
        names_[id].arg_key == arg_key) {
      return id;
    }
  }
  names_.push_back(InternedName{std::move(name), std::move(category),
                                std::move(arg_key)});
  return static_cast<uint32_t>(names_.size() - 1);
}

size_t ShardedTracer::Flush() {
  scratch_.clear();
  for (auto& shard : shards_) {
    shard->Drain(&scratch_);
  }
  if (sink_ == nullptr) {
    return scratch_.size();
  }
  std::lock_guard<std::mutex> lock(intern_mu_);
  for (const ShardEvent& event : scratch_) {
    if (event.name_id >= names_.size()) {
      continue;  // recorded with an ID this tracer never handed out
    }
    const InternedName& interned = names_[event.name_id];
    std::vector<std::pair<std::string, std::string>> args;
    if (!interned.arg_key.empty()) {
      args.emplace_back(interned.arg_key, std::to_string(event.arg));
    }
    if (event.dur_us < 0.0) {
      sink_->RecordInstant(TraceClock::kWall, interned.name, interned.category,
                           event.ts_us, event.lane, std::move(args));
    } else {
      sink_->RecordComplete(TraceClock::kWall, interned.name,
                            interned.category, event.ts_us, event.dur_us,
                            event.lane, std::move(args));
    }
  }
  return scratch_.size();
}

uint64_t ShardedTracer::total_dropped() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->dropped();
  }
  return total;
}

}  // namespace obs
}  // namespace surfer
