#ifndef SURFER_OBS_TRACE_MERGE_H_
#define SURFER_OBS_TRACE_MERGE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "obs/json.h"

namespace surfer {
namespace obs {

/// One per-process Chrome trace to fold into a merged timeline.
struct TraceMergeInput {
  /// Lane label shown by the viewer ("worker 0", "coordinator", ...).
  std::string label;
  /// A {"traceEvents": [...]} document as written by Tracer::WriteChromeTrace,
  /// optionally carrying a top-level "origin_unix_us" anchor (the wall-clock
  /// time of the tracer's t=0) for cross-process alignment.
  JsonValue trace;
};

/// Merges per-process Chrome traces into one timeline with per-process
/// lanes: input i's events keep their relative order and thread lanes but
/// move to pid = 1000 * i + original pid, process_name metadata is prefixed
/// with the input's label, and — when every input carries an
/// "origin_unix_us" anchor — timestamps shift onto the common clock of the
/// earliest anchor, so spans from different processes line up the way they
/// actually overlapped.
Result<JsonValue> MergeChromeTraces(const std::vector<TraceMergeInput>& inputs);

}  // namespace obs
}  // namespace surfer

#endif  // SURFER_OBS_TRACE_MERGE_H_
