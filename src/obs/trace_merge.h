#ifndef SURFER_OBS_TRACE_MERGE_H_
#define SURFER_OBS_TRACE_MERGE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "obs/json.h"

namespace surfer {
namespace obs {

/// One per-process Chrome trace to fold into a merged timeline.
struct TraceMergeInput {
  /// Lane label shown by the viewer ("worker 0", "coordinator", ...).
  std::string label;
  /// A {"traceEvents": [...]} document as written by Tracer::WriteChromeTrace,
  /// optionally carrying a top-level "origin_unix_us" anchor (the wall-clock
  /// time of the tracer's t=0) and a "clock_sync" block ({"proc",
  /// "offsets_us", "uncertainty_us"} from the handshake ping exchange) for
  /// cross-process alignment.
  JsonValue trace;
};

/// Merges per-process Chrome traces into one timeline with per-process
/// lanes: input i's events keep their relative order and thread lanes but
/// move to pid = 1000 * i + original pid, and process_name metadata is
/// prefixed with the input's label.
///
/// Timestamp alignment, best clock first:
///  - "offset": every input carries both "origin_unix_us" and a "clock_sync"
///    offset table covering the reference process (input 0's proc). Each
///    shard's anchor is corrected by its estimated offset to the reference
///    clock before the common shift, so skewed wall clocks still line up.
///  - "origin": every input carries "origin_unix_us" but the offset tables
///    are missing or incomplete; raw wall-clock anchors align the shards.
///  - "none": at least one input has no anchor. A partial shift would
///    *misalign* the anchorless inputs, so all clocks stay local.
/// The merged document reports the mode in "alignment", keeps the legacy
/// "aligned" bool (alignment != "none"), and lists the labels of inputs
/// lacking "origin_unix_us" in "unanchored" so callers can warn.
Result<JsonValue> MergeChromeTraces(const std::vector<TraceMergeInput>& inputs);

}  // namespace obs
}  // namespace surfer

#endif  // SURFER_OBS_TRACE_MERGE_H_
