#ifndef SURFER_OBS_TRACE_SHARD_H_
#define SURFER_OBS_TRACE_SHARD_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace surfer {
namespace obs {

/// One hot-path trace record: fixed size, no strings, no heap. Names and
/// categories are interned once (cold path) into small IDs; `arg` carries one
/// free integer payload (partition id, byte count, ...) whose label is part
/// of the interned entry.
struct ShardEvent {
  uint32_t name_id = 0;
  uint32_t lane = 0;     ///< Chrome-trace tid lane (machine id in the runtime)
  double ts_us = 0.0;    ///< wall microseconds in the sink tracer's origin
  double dur_us = 0.0;   ///< span duration; < 0 marks an instant event
  uint64_t arg = 0;      ///< payload, labeled by the interned entry's arg key
};

/// Single-producer single-consumer ring buffer of ShardEvents. The producer
/// is the one thread that owns the shard; the consumer is whoever flushes
/// (the main thread at flush points). Record never blocks and never
/// allocates: when the ring is full the event is dropped and counted, which
/// is the right trade for a profiler — losing a sample must not perturb the
/// workload being profiled.
class TraceShard {
 public:
  /// `capacity` is rounded up to a power of two (minimum 2).
  explicit TraceShard(size_t capacity);

  TraceShard(const TraceShard&) = delete;
  TraceShard& operator=(const TraceShard&) = delete;

  /// Producer side. Returns false (and counts a drop) when the ring is full.
  /// Compiled out together with the rest of tracing.
  bool Record(const ShardEvent& event) {
    if constexpr (!Tracer::CompiledIn()) {
      return true;
    }
    const uint64_t head = head_.load(std::memory_order_relaxed);
    const uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail >= slots_.size()) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    slots_[head & mask_] = event;
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side: appends every pending event to `out` in record order and
  /// frees their slots. Returns the number of events drained.
  size_t Drain(std::vector<ShardEvent>* out);

  size_t capacity() const { return slots_.size(); }
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  /// Events accepted so far (producer's view; approximate under concurrency).
  uint64_t recorded() const { return head_.load(std::memory_order_relaxed); }

 private:
  std::vector<ShardEvent> slots_;
  uint64_t mask_ = 0;
  alignas(64) std::atomic<uint64_t> head_{0};  ///< written by the producer
  alignas(64) std::atomic<uint64_t> tail_{0};  ///< written by the consumer
  std::atomic<uint64_t> dropped_{0};
};

/// A set of SPSC shards feeding one cold-path Tracer. Worker threads each
/// own a shard by index (the caller fixes the thread -> shard assignment, so
/// the single-producer contract is explicit rather than enforced through
/// thread-locals); the flusher converts compact events back into full
/// TraceEvents on the sink.
///
/// Interning is the cold half of the contract: call InternName once per
/// distinct span name before the hot loop, then record with the returned ID.
class ShardedTracer {
 public:
  static constexpr size_t kDefaultShardCapacity = 8192;

  /// `sink` may be null, in which case recording still works but Flush
  /// discards the events (useful when only the drop/throughput counters are
  /// wanted). Shards are preallocated; `shard(i)` is valid for i < count.
  ShardedTracer(Tracer* sink, size_t num_shards,
                size_t shard_capacity = kDefaultShardCapacity);

  ShardedTracer(const ShardedTracer&) = delete;
  ShardedTracer& operator=(const ShardedTracer&) = delete;

  /// Registers a span name once and returns its hot-path ID. `arg_key`, when
  /// non-empty, labels ShardEvent::arg in the flushed Chrome trace args.
  /// Thread-safe, but meant for setup code, not hot loops.
  uint32_t InternName(std::string name, std::string category = "",
                      std::string arg_key = "");

  TraceShard& shard(size_t i) { return *shards_[i]; }
  size_t num_shards() const { return shards_.size(); }

  /// Drains every shard into the sink tracer (ShardEvents with dur_us < 0
  /// become instants). Safe to call while producers are still recording —
  /// each shard is SPSC with this flusher as the consumer — but not
  /// concurrently with another Flush. Returns the number of events flushed.
  size_t Flush();

  /// Events dropped across all shards because a ring was full.
  uint64_t total_dropped() const;

 private:
  struct InternedName {
    std::string name;
    std::string category;
    std::string arg_key;
  };

  Tracer* sink_;
  std::vector<std::unique_ptr<TraceShard>> shards_;
  mutable std::mutex intern_mu_;
  std::vector<InternedName> names_;
  std::vector<ShardEvent> scratch_;
};

}  // namespace obs
}  // namespace surfer

#endif  // SURFER_OBS_TRACE_SHARD_H_
