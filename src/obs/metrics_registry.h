#ifndef SURFER_OBS_METRICS_REGISTRY_H_
#define SURFER_OBS_METRICS_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/histogram.h"
#include "obs/json.h"

namespace surfer {
namespace obs {

/// Sorted (key, value) label pairs identifying one time series of a metric
/// family, Prometheus-style.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing integer metric (messages sent, tasks run, ...).
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Point-in-time double metric (queue depth, edge cut, simulated clock, ...).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Thread-safe wrapper over surfer::Histogram for distribution metrics.
class HistogramMetric {
 public:
  void Observe(double value) {
    std::lock_guard<std::mutex> lock(mu_);
    histogram_.Add(value);
  }
  void Merge(const Histogram& other) {
    std::lock_guard<std::mutex> lock(mu_);
    histogram_.Merge(other);
  }
  Histogram Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return histogram_;
  }

 private:
  mutable std::mutex mu_;
  Histogram histogram_;
};

/// One exported time series in a registry snapshot.
struct MetricSample {
  enum class Kind { kCounter, kGauge, kHistogram };
  Kind kind = Kind::kCounter;
  std::string name;
  Labels labels;
  double value = 0.0;   ///< counters and gauges
  Histogram histogram;  ///< histograms only
};

/// A thread-safe collection of named metrics with label support. Metric
/// handles returned by the *Ref accessors are stable for the registry's
/// lifetime and cheap to update (atomics; histograms take a short lock), so
/// hot paths should hold on to the reference rather than re-resolving names.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& CounterRef(const std::string& name, const Labels& labels = {});
  Gauge& GaugeRef(const std::string& name, const Labels& labels = {});
  HistogramMetric& HistogramRef(const std::string& name,
                                const Labels& labels = {});

  /// All metrics, sorted by (name, labels) for deterministic export.
  std::vector<MetricSample> Snapshot() const;

  /// Prometheus text exposition format (one # TYPE line per family).
  std::string ToPrometheusText() const;

  /// JSON object {"counters": [...], "gauges": [...], "histograms": [...]}.
  JsonValue ToJson() const;

  /// Drops every metric (tests).
  void Clear();

  /// Process-wide default registry.
  static MetricsRegistry& Global();

 private:
  using Key = std::pair<std::string, Labels>;

  mutable std::mutex mu_;
  std::map<Key, std::unique_ptr<Counter>> counters_;
  std::map<Key, std::unique_ptr<Gauge>> gauges_;
  std::map<Key, std::unique_ptr<HistogramMetric>> histograms_;
};

}  // namespace obs
}  // namespace surfer

#endif  // SURFER_OBS_METRICS_REGISTRY_H_
