#include "obs/metrics_registry.h"

#include <algorithm>
#include <cstdio>
#include <tuple>

namespace surfer {
namespace obs {

namespace {

Labels SortedLabels(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

std::string LabelString(const Labels& labels) {
  if (labels.empty()) {
    return "";
  }
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) {
      out += ",";
    }
    out += labels[i].first + "=\"" + JsonEscape(labels[i].second) + "\"";
  }
  out += "}";
  return out;
}

JsonValue LabelsToJson(const Labels& labels) {
  JsonValue obj = JsonValue::MakeObject();
  for (const auto& [k, v] : labels) {
    obj.Set(k, v);
  }
  return obj;
}

JsonValue HistogramToJson(const Histogram& h) {
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("count", static_cast<uint64_t>(h.count()));
  obj.Set("sum", h.sum());
  obj.Set("mean", h.Mean());
  obj.Set("min", h.min());
  obj.Set("max", h.max());
  obj.Set("p50", h.Percentile(50));
  obj.Set("p90", h.Percentile(90));
  obj.Set("p99", h.Percentile(99));
  return obj;
}

}  // namespace

Counter& MetricsRegistry::CounterRef(const std::string& name,
                                     const Labels& labels) {
  const Key key{name, SortedLabels(labels)};
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[key];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
  }
  return *slot;
}

Gauge& MetricsRegistry::GaugeRef(const std::string& name,
                                 const Labels& labels) {
  const Key key{name, SortedLabels(labels)};
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[key];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
  }
  return *slot;
}

HistogramMetric& MetricsRegistry::HistogramRef(const std::string& name,
                                               const Labels& labels) {
  const Key key{name, SortedLabels(labels)};
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[key];
  if (slot == nullptr) {
    slot = std::make_unique<HistogramMetric>();
  }
  return *slot;
}

std::vector<MetricSample> MetricsRegistry::Snapshot() const {
  std::vector<MetricSample> samples;
  std::lock_guard<std::mutex> lock(mu_);
  samples.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [key, counter] : counters_) {
    MetricSample s;
    s.kind = MetricSample::Kind::kCounter;
    s.name = key.first;
    s.labels = key.second;
    s.value = static_cast<double>(counter->value());
    samples.push_back(std::move(s));
  }
  for (const auto& [key, gauge] : gauges_) {
    MetricSample s;
    s.kind = MetricSample::Kind::kGauge;
    s.name = key.first;
    s.labels = key.second;
    s.value = gauge->value();
    samples.push_back(std::move(s));
  }
  for (const auto& [key, histogram] : histograms_) {
    MetricSample s;
    s.kind = MetricSample::Kind::kHistogram;
    s.name = key.first;
    s.labels = key.second;
    s.histogram = histogram->Snapshot();
    samples.push_back(std::move(s));
  }
  std::sort(samples.begin(), samples.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return std::tie(a.name, a.labels) < std::tie(b.name, b.labels);
            });
  return samples;
}

std::string MetricsRegistry::ToPrometheusText() const {
  const std::vector<MetricSample> samples = Snapshot();
  std::string out;
  std::string last_typed;  // last family a # TYPE line was emitted for
  auto emit_type = [&](const std::string& name, const char* type) {
    if (name != last_typed) {
      out += "# TYPE " + name + " " + type + "\n";
      last_typed = name;
    }
  };
  char buf[64];
  auto number = [&](double d) {
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    return std::string(buf);
  };
  for (const MetricSample& s : samples) {
    switch (s.kind) {
      case MetricSample::Kind::kCounter:
        emit_type(s.name, "counter");
        out += s.name + LabelString(s.labels) + " " + number(s.value) + "\n";
        break;
      case MetricSample::Kind::kGauge:
        emit_type(s.name, "gauge");
        out += s.name + LabelString(s.labels) + " " + number(s.value) + "\n";
        break;
      case MetricSample::Kind::kHistogram: {
        // Exported as a summary (count/sum + percentile gauges): the
        // underlying log2 buckets are not Prometheus cumulative buckets.
        emit_type(s.name, "summary");
        Labels labels = s.labels;
        out += s.name + "_count" + LabelString(labels) + " " +
               number(static_cast<double>(s.histogram.count())) + "\n";
        out += s.name + "_sum" + LabelString(labels) + " " +
               number(s.histogram.sum()) + "\n";
        for (double q : {0.5, 0.9, 0.99}) {
          labels = s.labels;
          labels.emplace_back("quantile", number(q));
          out += s.name + LabelString(labels) + " " +
                 number(s.histogram.Percentile(q * 100.0)) + "\n";
        }
        break;
      }
    }
  }
  return out;
}

JsonValue MetricsRegistry::ToJson() const {
  const std::vector<MetricSample> samples = Snapshot();
  JsonValue counters = JsonValue::MakeArray();
  JsonValue gauges = JsonValue::MakeArray();
  JsonValue histograms = JsonValue::MakeArray();
  for (const MetricSample& s : samples) {
    JsonValue entry = JsonValue::MakeObject();
    entry.Set("name", s.name);
    if (!s.labels.empty()) {
      entry.Set("labels", LabelsToJson(s.labels));
    }
    switch (s.kind) {
      case MetricSample::Kind::kCounter:
        entry.Set("value", s.value);
        counters.Append(std::move(entry));
        break;
      case MetricSample::Kind::kGauge:
        entry.Set("value", s.value);
        gauges.Append(std::move(entry));
        break;
      case MetricSample::Kind::kHistogram:
        entry.Set("summary", HistogramToJson(s.histogram));
        histograms.Append(std::move(entry));
        break;
    }
  }
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("counters", std::move(counters));
  obj.Set("gauges", std::move(gauges));
  obj.Set("histograms", std::move(histograms));
  return obj;
}

void MetricsRegistry::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace obs
}  // namespace surfer
