// surfer_trace: analysis and gating CLI over surfer's JSON artifacts.
//
//   surfer_trace summary <run_report.json>
//       Top spans and, when present, the per-superstep timeline: phase
//       breakdown, straggler per step, and the critical path.
//
//   surfer_trace diff <before.json> <after.json>
//       Every numeric field present in both files whose value changed.
//
//   surfer_trace check <current.json> [--baseline <path>]
//                      [--tolerance <frac>]
//       Gates a BENCH_*.json against a committed baseline: exits nonzero on
//       a perf regression or a broken bit-identity/byte-count invariant.
//       Without --baseline the file's own basename in the current directory
//       is used, so `surfer_trace check BENCH_partition.json` from the repo
//       root self-checks the committed baseline (a smoke test that the gate
//       and the baseline agree).

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/bench_gate.h"
#include "obs/json.h"

namespace {

using surfer::obs::BenchCheckOptions;
using surfer::obs::BenchCheckResult;
using surfer::obs::JsonValue;

int Usage() {
  std::fprintf(stderr,
               "usage: surfer_trace summary <run_report.json>\n"
               "       surfer_trace diff <before.json> <after.json>\n"
               "       surfer_trace check <current.json> [--baseline <path>]"
               " [--tolerance <frac>]\n");
  return 2;
}

bool LoadJson(const std::string& path, JsonValue* out) {
  std::ifstream in(path);
  if (!in.is_open()) {
    std::fprintf(stderr, "surfer_trace: cannot open %s\n", path.c_str());
    return false;
  }
  std::ostringstream text;
  text << in.rdbuf();
  auto parsed = surfer::obs::ParseJson(text.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "surfer_trace: %s: %s\n", path.c_str(),
                 parsed.status().message().c_str());
    return false;
  }
  *out = std::move(parsed).value();
  return true;
}

double NumberOr(const JsonValue* v, double fallback) {
  return v != nullptr && v->is_number() ? v->as_number() : fallback;
}

std::string StringOr(const JsonValue* v, const std::string& fallback) {
  return v != nullptr && v->is_string() ? v->as_string() : fallback;
}

void PrintSpans(const JsonValue& report) {
  const JsonValue* trace = report.Find("trace");
  const JsonValue* spans = trace != nullptr ? trace->Find("spans") : nullptr;
  if (spans == nullptr || !spans->is_array() || spans->as_array().empty()) {
    return;
  }
  std::printf("top spans (by total time):\n");
  std::printf("  %-40s %8s %12s %12s %12s\n", "name", "count", "total_s",
              "p99_s", "max_s");
  size_t shown = 0;
  for (const JsonValue& span : spans->as_array()) {
    if (++shown > 15) {
      std::printf("  ... %zu more\n", spans->as_array().size() - 15);
      break;
    }
    std::printf("  %-40s %8.0f %12.6f %12.6f %12.6f\n",
                StringOr(span.Find("name"), "?").c_str(),
                NumberOr(span.Find("count"), 0),
                NumberOr(span.Find("total_s"), 0),
                NumberOr(span.Find("p99_s"), 0),
                NumberOr(span.Find("max_s"), 0));
  }
}

void PrintTimeline(const JsonValue& report) {
  const JsonValue* timeline = report.Find("timeline");
  if (timeline == nullptr || !timeline->is_object()) {
    return;
  }
  const JsonValue* steps = timeline->Find("steps");
  if (steps != nullptr && steps->is_array() && !steps->as_array().empty()) {
    std::printf("\nsuperstep timeline:\n");
    std::printf("  %4s %-9s %9s %12s %12s %7s %-10s\n", "iter", "stage",
                "straggler", "max_busy_s", "mean_busy_s", "skew", "dominant");
    for (const JsonValue& step : steps->as_array()) {
      const JsonValue* straggler = step.Find("straggler");
      if (straggler == nullptr) {
        continue;
      }
      const JsonValue* machine = straggler->Find("machine");
      const std::string who =
          machine != nullptr && machine->is_number()
              ? "m" + std::to_string(
                          static_cast<long long>(machine->as_number()))
              : "-";
      std::printf("  %4.0f %-9s %9s %12.6f %12.6f %7.2f %-10s\n",
                  NumberOr(step.Find("iteration"), 0),
                  StringOr(step.Find("stage"), "?").c_str(), who.c_str(),
                  NumberOr(straggler->Find("max_busy_s"), 0),
                  NumberOr(straggler->Find("mean_busy_s"), 0),
                  NumberOr(straggler->Find("skew"), 0),
                  StringOr(straggler->Find("dominant_phase"), "-").c_str());
    }
  }
  const JsonValue* critical = timeline->Find("critical_path");
  if (critical != nullptr && critical->is_object()) {
    std::printf("\ncritical path: %.6fs busy across %zu supersteps\n",
                NumberOr(critical->Find("total_busy_s"), 0),
                critical->Find("steps") != nullptr &&
                        critical->Find("steps")->is_array()
                    ? critical->Find("steps")->as_array().size()
                    : 0);
  }
}

int RunSummary(const std::string& path) {
  JsonValue report;
  if (!LoadJson(path, &report)) {
    return 1;
  }
  std::printf("%s (schema v%.0f)\n", StringOr(report.Find("name"), "?").c_str(),
              NumberOr(report.Find("schema_version"), 0));
  if (const JsonValue* notes = report.Find("notes");
      notes != nullptr && notes->is_string()) {
    std::printf("notes: %s\n", notes->as_string().c_str());
  }
  if (const JsonValue* runtime = report.Find("runtime");
      runtime != nullptr && runtime->is_object()) {
    std::printf(
        "runtime: %.0f machines x %.0f workers, %.0f iterations, "
        "wall %.4fs, barrier wait %.4fs, %.0f stalls\n",
        NumberOr(runtime->Find("num_machines"), 0),
        NumberOr(runtime->Find("num_workers"), 0),
        NumberOr(runtime->Find("iterations"), 0),
        NumberOr(runtime->Find("wall_seconds"), 0),
        NumberOr(runtime->Find("barrier_wait_seconds"), 0),
        NumberOr(runtime->Find("send_stalls"), 0));
  }
  PrintSpans(report);
  PrintTimeline(report);
  return 0;
}

int RunDiff(const std::string& before_path, const std::string& after_path) {
  JsonValue before;
  JsonValue after;
  if (!LoadJson(before_path, &before) || !LoadJson(after_path, &after)) {
    return 1;
  }
  const std::vector<surfer::obs::JsonDelta> deltas =
      surfer::obs::DiffNumbers(before, after);
  if (deltas.empty()) {
    std::printf("no numeric differences\n");
    return 0;
  }
  for (const auto& delta : deltas) {
    if (delta.before != 0.0) {
      std::printf("%-60s %14.6g -> %-14.6g (%+.1f%%)\n", delta.path.c_str(),
                  delta.before, delta.after,
                  (delta.after / delta.before - 1.0) * 100.0);
    } else {
      std::printf("%-60s %14.6g -> %-14.6g\n", delta.path.c_str(),
                  delta.before, delta.after);
    }
  }
  return 0;
}

int RunCheck(const std::vector<std::string>& args) {
  std::string current_path;
  std::string baseline_path;
  BenchCheckOptions options;
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--baseline" && i + 1 < args.size()) {
      baseline_path = args[++i];
    } else if (args[i] == "--tolerance" && i + 1 < args.size()) {
      options.rel_tolerance = std::stod(args[++i]);
    } else if (current_path.empty()) {
      current_path = args[i];
    } else {
      return Usage();
    }
  }
  if (current_path.empty()) {
    return Usage();
  }
  if (baseline_path.empty()) {
    baseline_path =
        std::filesystem::path(current_path).filename().string();
  }
  JsonValue current;
  JsonValue baseline;
  if (!LoadJson(current_path, &current) ||
      !LoadJson(baseline_path, &baseline)) {
    return 1;
  }
  const BenchCheckResult result =
      surfer::obs::CheckBenchBaseline(current, baseline, options);
  for (const std::string& note : result.notes) {
    std::printf("note: %s\n", note.c_str());
  }
  for (const std::string& failure : result.failures) {
    std::fprintf(stderr, "FAIL: %s\n", failure.c_str());
  }
  if (result.ok) {
    std::printf("check OK: %s vs %s\n", current_path.c_str(),
                baseline_path.c_str());
    return 0;
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) {
    return Usage();
  }
  const std::string command = args[0];
  args.erase(args.begin());
  if (command == "summary" && args.size() == 1) {
    return RunSummary(args[0]);
  }
  if (command == "diff" && args.size() == 2) {
    return RunDiff(args[0], args[1]);
  }
  if (command == "check") {
    return RunCheck(args);
  }
  return Usage();
}
