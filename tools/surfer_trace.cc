// surfer_trace: analysis and gating CLI over surfer's JSON artifacts.
//
//   surfer_trace summary <run_report.json>
//       Top spans and, when present, the per-superstep timeline: phase
//       breakdown, straggler per step, and the critical path.
//
//   surfer_trace diff <before.json> <after.json>
//       Every numeric field present in both files whose value changed.
//
//   surfer_trace check <current.json> [--baseline <path>]
//                      [--tolerance <frac>] [--strict-drops]
//       Gates a BENCH_*.json against a committed baseline: exits nonzero on
//       a perf regression or a broken bit-identity/byte-count invariant.
//       Nonzero drop counters (trace events, telemetry samples) warn by
//       default and fail under --strict-drops. Without --baseline the
//       file's own basename in the current directory is used, so
//       `surfer_trace check BENCH_partition.json` from the repo root
//       self-checks the committed baseline (a smoke test that the gate and
//       the baseline agree).
//
//   surfer_trace merge -o <merged.json> <trace.json> [<trace.json> ...]
//       Combines per-process Chrome traces (e.g. the dist_worker_N.trace.json
//       files a distributed run writes) into one timeline with a lane per
//       process; when every input carries an origin_unix_us anchor the
//       timestamps are aligned onto a common clock.
//
//   surfer_trace telemetry <run_report.json>
//       Summarizes the flight recorder's time series (min/mean/max/p99,
//       peak timestamp, ceiling occupancy) and scans them for sustained
//       conditions: channel backpressure windows, wire-pool exhaustion, and
//       barrier-wait onset — each correlated against the superstep bounds
//       in the report's timeline block, so "which superstep went wrong"
//       falls out of timestamps instead of guesswork.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/bench_gate.h"
#include "obs/json.h"
#include "obs/trace_merge.h"

namespace {

using surfer::obs::BenchCheckOptions;
using surfer::obs::BenchCheckResult;
using surfer::obs::JsonValue;

int Usage() {
  std::fprintf(stderr,
               "usage: surfer_trace summary <run_report.json>\n"
               "       surfer_trace diff <before.json> <after.json>\n"
               "       surfer_trace check <current.json> [--baseline <path>]"
               " [--tolerance <frac>] [--strict-drops]\n"
               "       surfer_trace merge -o <merged.json> <trace.json>"
               " [<trace.json> ...]\n"
               "       surfer_trace telemetry <run_report.json>\n");
  return 2;
}

bool LoadJson(const std::string& path, JsonValue* out) {
  std::ifstream in(path);
  if (!in.is_open()) {
    std::fprintf(stderr, "surfer_trace: cannot open %s\n", path.c_str());
    return false;
  }
  std::ostringstream text;
  text << in.rdbuf();
  auto parsed = surfer::obs::ParseJson(text.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "surfer_trace: %s: %s\n", path.c_str(),
                 parsed.status().message().c_str());
    return false;
  }
  *out = std::move(parsed).value();
  return true;
}

double NumberOr(const JsonValue* v, double fallback) {
  return v != nullptr && v->is_number() ? v->as_number() : fallback;
}

std::string StringOr(const JsonValue* v, const std::string& fallback) {
  return v != nullptr && v->is_string() ? v->as_string() : fallback;
}

void PrintSpans(const JsonValue& report) {
  const JsonValue* trace = report.Find("trace");
  const JsonValue* spans = trace != nullptr ? trace->Find("spans") : nullptr;
  if (spans == nullptr || !spans->is_array() || spans->as_array().empty()) {
    return;
  }
  std::printf("top spans (by total time):\n");
  std::printf("  %-40s %8s %12s %12s %12s\n", "name", "count", "total_s",
              "p99_s", "max_s");
  size_t shown = 0;
  for (const JsonValue& span : spans->as_array()) {
    if (++shown > 15) {
      std::printf("  ... %zu more\n", spans->as_array().size() - 15);
      break;
    }
    std::printf("  %-40s %8.0f %12.6f %12.6f %12.6f\n",
                StringOr(span.Find("name"), "?").c_str(),
                NumberOr(span.Find("count"), 0),
                NumberOr(span.Find("total_s"), 0),
                NumberOr(span.Find("p99_s"), 0),
                NumberOr(span.Find("max_s"), 0));
  }
}

void PrintTimeline(const JsonValue& report) {
  const JsonValue* timeline = report.Find("timeline");
  if (timeline == nullptr || !timeline->is_object()) {
    return;
  }
  const JsonValue* steps = timeline->Find("steps");
  if (steps != nullptr && steps->is_array() && !steps->as_array().empty()) {
    std::printf("\nsuperstep timeline:\n");
    std::printf("  %4s %-9s %9s %12s %12s %7s %-10s\n", "iter", "stage",
                "straggler", "max_busy_s", "mean_busy_s", "skew", "dominant");
    for (const JsonValue& step : steps->as_array()) {
      const JsonValue* straggler = step.Find("straggler");
      if (straggler == nullptr) {
        continue;
      }
      const JsonValue* machine = straggler->Find("machine");
      const std::string who =
          machine != nullptr && machine->is_number()
              ? "m" + std::to_string(
                          static_cast<long long>(machine->as_number()))
              : "-";
      std::printf("  %4.0f %-9s %9s %12.6f %12.6f %7.2f %-10s\n",
                  NumberOr(step.Find("iteration"), 0),
                  StringOr(step.Find("stage"), "?").c_str(), who.c_str(),
                  NumberOr(straggler->Find("max_busy_s"), 0),
                  NumberOr(straggler->Find("mean_busy_s"), 0),
                  NumberOr(straggler->Find("skew"), 0),
                  StringOr(straggler->Find("dominant_phase"), "-").c_str());
    }
  }
  const JsonValue* critical = timeline->Find("critical_path");
  if (critical != nullptr && critical->is_object()) {
    std::printf("\ncritical path: %.6fs busy across %zu supersteps\n",
                NumberOr(critical->Find("total_busy_s"), 0),
                critical->Find("steps") != nullptr &&
                        critical->Find("steps")->is_array()
                    ? critical->Find("steps")->as_array().size()
                    : 0);
  }
}

/// The distributed engine's "cluster" block: coordinator-clock round
/// timing folded with offset-corrected per-link latency into a cluster-wide
/// per-superstep critical path.
void PrintCluster(const JsonValue& report) {
  const JsonValue* cluster = report.Find("cluster");
  if (cluster == nullptr || !cluster->is_object()) {
    return;
  }
  const double stragglers = NumberOr(cluster->Find("stragglers_flagged"), 0);
  const JsonValue* links = cluster->Find("links");
  std::printf("\ncluster: %zu link samples, %.0f stragglers flagged online\n",
              links != nullptr && links->is_array() ? links->as_array().size()
                                                    : 0,
              stragglers);
  const JsonValue* critical = cluster->Find("critical_path");
  const JsonValue* steps =
      critical != nullptr ? critical->Find("steps") : nullptr;
  if (steps == nullptr || !steps->is_array() || steps->as_array().empty()) {
    return;
  }
  std::printf("cluster critical path: %.6fs across %zu rounds\n",
              NumberOr(critical->Find("total_s"), 0),
              steps->as_array().size());
  std::printf("  %6s %4s %-9s %5s %12s %-28s\n", "round", "iter", "stage",
              "proc", "duration_s", "worst inbound link");
  for (const JsonValue& step : steps->as_array()) {
    const JsonValue* proc = step.Find("proc");
    const std::string who =
        proc != nullptr && proc->is_number()
            ? "p" + std::to_string(static_cast<long long>(proc->as_number()))
            : "-";
    std::string link_str = "-";
    if (const JsonValue* link = step.Find("link");
        link != nullptr && link->is_object()) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "p%lld (mean %.0fus, max %.0fus)",
                    static_cast<long long>(NumberOr(link->Find("from"), 0)),
                    NumberOr(link->Find("mean_latency_us"), 0),
                    NumberOr(link->Find("max_latency_us"), 0));
      link_str = buf;
    }
    std::printf("  %6.0f %4.0f %-9s %5s %12.6f %-28s\n",
                NumberOr(step.Find("seq"), 0),
                NumberOr(step.Find("iteration"), 0),
                StringOr(step.Find("stage"), "?").c_str(), who.c_str(),
                NumberOr(step.Find("duration_s"), 0), link_str.c_str());
  }
}

/// Serving-plane table, printed when the file's points carry `qps` —
/// BENCH_serving.json baselines summarize per client-thread point.
void PrintServing(const JsonValue& report) {
  const JsonValue* points = report.Find("points");
  if (points == nullptr || !points->is_array() || points->as_array().empty() ||
      points->as_array().front().Find("qps") == nullptr) {
    return;
  }
  std::printf("\nserving sweep:\n");
  std::printf("  %8s %12s %10s %10s %10s %8s\n", "clients", "qps", "p50 (us)",
              "p99 (us)", "hit rate", "shed");
  for (const JsonValue& point : points->as_array()) {
    const double shed = NumberOr(point.Find("shed_admission"), 0) +
                        NumberOr(point.Find("shed_deadline"), 0);
    std::printf("  %8.0f %12.0f %10.0f %10.0f %9.1f%% %8.0f\n",
                NumberOr(point.Find("threads"), 0),
                NumberOr(point.Find("qps"), 0),
                NumberOr(point.Find("p50_us"), 0),
                NumberOr(point.Find("p99_us"), 0),
                NumberOr(point.Find("cache_hit_rate"), 0) * 100.0, shed);
  }
}

int RunSummary(const std::string& path) {
  JsonValue report;
  if (!LoadJson(path, &report)) {
    return 1;
  }
  std::printf("%s (schema v%.0f)\n", StringOr(report.Find("name"), "?").c_str(),
              NumberOr(report.Find("schema_version"), 0));
  if (const JsonValue* notes = report.Find("notes");
      notes != nullptr && notes->is_string()) {
    std::printf("notes: %s\n", notes->as_string().c_str());
  }
  if (const JsonValue* runtime = report.Find("runtime");
      runtime != nullptr && runtime->is_object()) {
    std::printf(
        "runtime: %.0f machines x %.0f workers, %.0f iterations, "
        "wall %.4fs, barrier wait %.4fs, %.0f stalls\n",
        NumberOr(runtime->Find("num_machines"), 0),
        NumberOr(runtime->Find("num_workers"), 0),
        NumberOr(runtime->Find("iterations"), 0),
        NumberOr(runtime->Find("wall_seconds"), 0),
        NumberOr(runtime->Find("barrier_wait_seconds"), 0),
        NumberOr(runtime->Find("send_stalls"), 0));
    // The sort-free regroup counters: scatter throughput is the bench-gated
    // quantity, and a nonzero skipped count means frontier gating was live
    // (the app opted in via kSkipSilentVertices).
    if (const double scattered =
            NumberOr(runtime->Find("combine_messages_scattered"), 0);
        scattered > 0) {
      std::printf(
          "combine: %.0f messages scattered in %.6fs (%.3g msgs/s), "
          "%.0f silent vertices skipped by frontier gating\n",
          scattered, NumberOr(runtime->Find("combine_scatter_seconds"), 0),
          NumberOr(runtime->Find("combine_scatter_msgs_per_sec"), 0),
          NumberOr(runtime->Find("frontier_vertices_skipped"), 0));
    }
  }
  PrintServing(report);
  PrintSpans(report);
  PrintTimeline(report);
  PrintCluster(report);
  return 0;
}

int RunDiff(const std::string& before_path, const std::string& after_path) {
  JsonValue before;
  JsonValue after;
  if (!LoadJson(before_path, &before) || !LoadJson(after_path, &after)) {
    return 1;
  }
  const std::vector<surfer::obs::JsonDelta> deltas =
      surfer::obs::DiffNumbers(before, after);
  if (deltas.empty()) {
    std::printf("no numeric differences\n");
    return 0;
  }
  for (const auto& delta : deltas) {
    if (delta.before != 0.0) {
      std::printf("%-60s %14.6g -> %-14.6g (%+.1f%%)\n", delta.path.c_str(),
                  delta.before, delta.after,
                  (delta.after / delta.before - 1.0) * 100.0);
    } else {
      std::printf("%-60s %14.6g -> %-14.6g\n", delta.path.c_str(),
                  delta.before, delta.after);
    }
  }
  return 0;
}

int RunCheck(const std::vector<std::string>& args) {
  std::string current_path;
  std::string baseline_path;
  BenchCheckOptions options;
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--baseline" && i + 1 < args.size()) {
      baseline_path = args[++i];
    } else if (args[i] == "--tolerance" && i + 1 < args.size()) {
      options.rel_tolerance = std::stod(args[++i]);
    } else if (args[i] == "--strict-drops") {
      options.strict_drops = true;
    } else if (current_path.empty()) {
      current_path = args[i];
    } else {
      return Usage();
    }
  }
  if (current_path.empty()) {
    return Usage();
  }
  if (baseline_path.empty()) {
    baseline_path =
        std::filesystem::path(current_path).filename().string();
  }
  JsonValue current;
  JsonValue baseline;
  if (!LoadJson(current_path, &current) ||
      !LoadJson(baseline_path, &baseline)) {
    return 1;
  }
  const BenchCheckResult result =
      surfer::obs::CheckBenchBaseline(current, baseline, options);
  for (const std::string& note : result.notes) {
    std::printf("note: %s\n", note.c_str());
  }
  for (const std::string& failure : result.failures) {
    std::fprintf(stderr, "FAIL: %s\n", failure.c_str());
  }
  if (result.ok) {
    std::printf("check OK: %s vs %s\n", current_path.c_str(),
                baseline_path.c_str());
    return 0;
  }
  return 1;
}

int RunMerge(const std::vector<std::string>& args) {
  std::string out_path;
  std::vector<std::string> input_paths;
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "-o" && i + 1 < args.size()) {
      out_path = args[++i];
    } else {
      input_paths.push_back(args[i]);
    }
  }
  if (out_path.empty() || input_paths.empty()) {
    return Usage();
  }
  std::vector<surfer::obs::TraceMergeInput> inputs;
  for (const std::string& path : input_paths) {
    surfer::obs::TraceMergeInput input;
    if (!LoadJson(path, &input.trace)) {
      return 1;
    }
    input.label = std::filesystem::path(path).stem().string();
    inputs.push_back(std::move(input));
  }
  auto merged = surfer::obs::MergeChromeTraces(inputs);
  if (!merged.ok()) {
    std::fprintf(stderr, "surfer_trace: %s\n",
                 merged.status().message().c_str());
    return 1;
  }
  // Shards without a wall-clock anchor degrade the whole merge to local
  // clocks; name them so the producer can be fixed.
  if (const JsonValue* unanchored = merged->Find("unanchored");
      unanchored != nullptr && unanchored->is_array()) {
    for (const JsonValue& label : unanchored->as_array()) {
      std::fprintf(stderr,
                   "surfer_trace: warning: shard %s carries no "
                   "origin_unix_us anchor; merged timestamps stay on local "
                   "clocks\n",
                   label.is_string() ? label.as_string().c_str() : "?");
    }
  }
  std::ofstream out(out_path);
  out << merged->Write(/*indent=*/1) << "\n";
  out.close();
  if (!out.good()) {
    std::fprintf(stderr, "surfer_trace: failed writing %s\n", out_path.c_str());
    return 1;
  }
  const JsonValue* alignment = merged->Find("alignment");
  std::printf("merged %zu traces into %s (alignment: %s)\n", inputs.size(),
              out_path.c_str(),
              alignment != nullptr && alignment->is_string()
                  ? alignment->as_string().c_str()
                  : "?");
  return 0;
}

// ----------------------------------------------------------- telemetry

/// One superstep's bounds pulled from the report's timeline block, plus its
/// summed barrier seconds — what telemetry windows correlate against.
struct StepBound {
  double iteration = 0;
  std::string stage;
  double start_s = 0.0;
  double end_s = 0.0;
  double barrier_s = 0.0;
};

std::vector<StepBound> LoadStepBounds(const JsonValue& report) {
  std::vector<StepBound> bounds;
  const JsonValue* timeline = report.Find("timeline");
  const JsonValue* steps =
      timeline != nullptr ? timeline->Find("steps") : nullptr;
  if (steps == nullptr || !steps->is_array()) {
    return bounds;
  }
  for (const JsonValue& step : steps->as_array()) {
    StepBound bound;
    bound.iteration = NumberOr(step.Find("iteration"), 0);
    bound.stage = StringOr(step.Find("stage"), "?");
    bound.start_s = NumberOr(step.Find("start_s"), 0);
    bound.end_s = NumberOr(step.Find("end_s"), 0);
    if (const JsonValue* machines = step.Find("machines");
        machines != nullptr && machines->is_array()) {
      for (const JsonValue& machine : machines->as_array()) {
        bound.barrier_s += NumberOr(machine.Find("barrier_s"), 0);
      }
    }
    bounds.push_back(std::move(bound));
  }
  return bounds;
}

/// Names the supersteps a [t0, t1] second window overlaps; "-" when the
/// report predates start_s/end_s bounds (all zero) or nothing matches.
std::string StepsCovering(const std::vector<StepBound>& bounds, double t0_s,
                          double t1_s) {
  std::string out;
  for (const StepBound& bound : bounds) {
    if (bound.end_s <= bound.start_s) {
      continue;  // v2-era profile without bounds
    }
    if (bound.start_s <= t1_s && bound.end_s >= t0_s) {
      if (!out.empty()) {
        out += ", ";
      }
      out += bound.stage + "[" +
             std::to_string(static_cast<long long>(bound.iteration)) + "]";
    }
  }
  return out.empty() ? "-" : out;
}

/// A maximal run of consecutive samples satisfying a condition.
struct Window {
  double t0_us = 0.0;
  double t1_us = 0.0;
  size_t samples = 0;
  double peak = 0.0;
};

/// Scans a sample array ([t_us, value] pairs) for sustained windows where
/// `above(value)` holds for at least `min_samples` consecutive samples —
/// one tick over a threshold is noise; a sustained run is a condition.
template <typename Pred>
std::vector<Window> SustainedWindows(const JsonValue& samples, Pred above,
                                     size_t min_samples) {
  std::vector<Window> windows;
  Window open;
  bool active = false;
  auto close = [&] {
    if (active && open.samples >= min_samples) {
      windows.push_back(open);
    }
    active = false;
  };
  for (const JsonValue& pair : samples.as_array()) {
    if (!pair.is_array() || pair.as_array().size() != 2) {
      continue;
    }
    const double t_us = pair.as_array()[0].as_number();
    const double value = pair.as_array()[1].as_number();
    if (above(value)) {
      if (!active) {
        open = Window{t_us, t_us, 0, value};
        active = true;
      }
      open.t1_us = t_us;
      ++open.samples;
      open.peak = std::max(open.peak, value);
    } else {
      close();
    }
  }
  close();
  return windows;
}

void PrintWindows(const char* what, const std::vector<Window>& windows,
                  const std::vector<StepBound>& bounds, bool* any) {
  for (const Window& w : windows) {
    const double t0_s = w.t0_us / 1e6;
    const double t1_s = w.t1_us / 1e6;
    std::printf("  %-24s %9.4fs - %9.4fs (%4zu samples, peak %.3g) steps: %s\n",
                what, t0_s, t1_s, w.samples, w.peak,
                StepsCovering(bounds, t0_s, t1_s).c_str());
    *any = true;
  }
}

int RunTelemetry(const std::string& path) {
  JsonValue report;
  if (!LoadJson(path, &report)) {
    return 1;
  }
  const JsonValue* telemetry = report.Find("telemetry");
  if (telemetry == nullptr || !telemetry->is_object()) {
    std::fprintf(stderr,
                 "surfer_trace: %s has no telemetry block (run with "
                 "RuntimeOptions::telemetry.enabled, schema v3)\n",
                 path.c_str());
    return 1;
  }
  std::printf("%s: telemetry @ %.2gms period, %.0f ticks, %.0f dropped\n",
              StringOr(report.Find("name"), "?").c_str(),
              NumberOr(telemetry->Find("period_seconds"), 0) * 1e3,
              NumberOr(telemetry->Find("samples_taken"), 0),
              NumberOr(telemetry->Find("samples_dropped"), 0));
  if (NumberOr(telemetry->Find("samples_dropped"), 0) > 0) {
    std::printf("note: rings wrapped; only the newest window survived\n");
  }

  const JsonValue* series = telemetry->Find("series");
  if (series == nullptr || !series->is_array()) {
    std::fprintf(stderr, "surfer_trace: telemetry block has no series\n");
    return 1;
  }
  std::printf("\n%-36s %6s %12s %12s %12s %12s %9s\n", "series", "count",
              "min", "mean", "p99", "max", "peak_at_s");
  for (const JsonValue& entry : series->as_array()) {
    const double max = NumberOr(entry.Find("max"), 0);
    const double min = NumberOr(entry.Find("min"), 0);
    if (min == 0.0 && max == 0.0) {
      continue;  // idle series: summary-only in the report, elided here too
    }
    std::string name = StringOr(entry.Find("name"), "?");
    const double ceiling = NumberOr(entry.Find("ceiling"), 0);
    if (ceiling > 0.0) {
      char occupancy[32];
      std::snprintf(occupancy, sizeof(occupancy), " (peak %2.0f%%)",
                    100.0 * max / ceiling);
      name += occupancy;
    }
    std::printf("%-36s %6.0f %12.4g %12.4g %12.4g %12.4g %9.4f\n",
                name.c_str(), NumberOr(entry.Find("count"), 0), min,
                NumberOr(entry.Find("mean"), 0), NumberOr(entry.Find("p99"), 0),
                max, NumberOr(entry.Find("peak_t_us"), 0) / 1e6);
  }

  // Condition scan. Thresholds: sustained means >= 3 consecutive ticks, a
  // channel is backpressured at >= 80% of its byte window, the barrier is
  // congested when over half its membership is parked.
  const std::vector<StepBound> bounds = LoadStepBounds(report);
  constexpr size_t kMinSustained = 3;
  std::printf("\nsustained conditions:\n");
  bool any = false;
  double outstanding_peak = 0.0;
  for (const JsonValue& entry : series->as_array()) {
    if (StringOr(entry.Find("name"), "") == "rt_pool_outstanding_buffers") {
      outstanding_peak = NumberOr(entry.Find("max"), 0);
    }
  }
  for (const JsonValue& entry : series->as_array()) {
    const std::string name = StringOr(entry.Find("name"), "");
    const JsonValue* samples = entry.Find("samples");
    if (samples == nullptr || !samples->is_array()) {
      continue;
    }
    const double ceiling = NumberOr(entry.Find("ceiling"), 0);
    if (name.rfind("rt_channel_bytes_in_flight", 0) == 0 && ceiling > 0.0) {
      PrintWindows(
          ("backpressure " + name).c_str(),
          SustainedWindows(
              *samples, [&](double v) { return v >= 0.8 * ceiling; },
              kMinSustained),
          bounds, &any);
    } else if (name == "rt_pool_free_buffers" && outstanding_peak > 0.0) {
      // Free buffers pinned at zero while batches are outstanding: every
      // Acquire in the window allocated instead of recycling.
      PrintWindows("pool exhaustion",
                   SustainedWindows(
                       *samples, [](double v) { return v <= 0.0; },
                       kMinSustained),
                   bounds, &any);
    } else if (name == "rt_barrier_waiting" && ceiling > 0.0) {
      PrintWindows(
          "barrier congestion",
          SustainedWindows(
              *samples, [&](double v) { return v >= 0.5 * ceiling; },
              kMinSustained),
          bounds, &any);
    }
  }
  if (!any) {
    std::printf("  none\n");
  }

  // Where barrier wait concentrates, from the timeline's own accounting —
  // the answer stands even when the sampler's window missed the moment.
  const StepBound* worst = nullptr;
  double total_barrier_s = 0.0;
  for (const StepBound& bound : bounds) {
    total_barrier_s += bound.barrier_s;
    if (worst == nullptr || bound.barrier_s > worst->barrier_s) {
      worst = &bound;
    }
  }
  if (worst != nullptr && worst->barrier_s > 0.0) {
    std::printf(
        "\nbarrier wait concentrates in %s[%lld]: %.4fs of %.4fs total "
        "(%.0f%%)",
        worst->stage.c_str(), static_cast<long long>(worst->iteration),
        worst->barrier_s, total_barrier_s,
        total_barrier_s > 0.0 ? 100.0 * worst->barrier_s / total_barrier_s
                              : 0.0);
    if (worst->end_s > worst->start_s) {
      std::printf(" @ %.4fs - %.4fs", worst->start_s, worst->end_s);
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) {
    return Usage();
  }
  const std::string command = args[0];
  args.erase(args.begin());
  if (command == "summary" && args.size() == 1) {
    return RunSummary(args[0]);
  }
  if (command == "diff" && args.size() == 2) {
    return RunDiff(args[0], args[1]);
  }
  if (command == "check") {
    return RunCheck(args);
  }
  if (command == "merge") {
    return RunMerge(args);
  }
  if (command == "telemetry" && args.size() == 1) {
    return RunTelemetry(args[0]);
  }
  return Usage();
}
