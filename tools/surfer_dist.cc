// surfer_dist: localhost multi-process smoke run of the distributed engine.
//
//   surfer_dist [--procs N] [--machines M] [--partitions P]
//               [--vertices V] [--iterations I] [--artifacts DIR]
//               [--heartbeat-ms MS] [--clock-sync-pings N] [--watch]
//
// Builds a synthetic social graph, partitions it, runs NetworkRanking once
// through the sequential analytic engine and once through the distributed
// engine (N real OS processes over localhost TCP), then asserts the two
// hard invariants the engine promises:
//
//   1. bit-identical vertex states, and
//   2. exact per-link reconciliation of the TCP engine's priced bytes
//      against the analytic model's link_network_bytes().
//
// --heartbeat-ms enables the worker health plane (and, with --watch, streams
// the coordinator's live status table to stderr); --clock-sync-pings runs
// the handshake clock-offset exchange. With either enabled the run also
// asserts the cluster report: a per-superstep critical path covering every
// driven round, and (with clock sync) per-link latency samples.
//
// Exits 0 when all asserted invariants hold, 1 on any mismatch — CI runs
// this as the distributed smoke gate.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "apps/network_ranking.h"
#include "cluster/topology.h"
#include "core/engine.h"
#include "core/sim_scale.h"
#include "core/surfer.h"
#include "graph/generators.h"

namespace {

struct Args {
  uint32_t procs = 3;
  uint32_t machines = 8;
  uint32_t partitions = 16;
  uint32_t vertices = 1 << 12;
  int iterations = 3;
  std::string artifacts;
  uint32_t heartbeat_ms = 0;
  uint32_t clock_sync_pings = 0;
  bool watch = false;
};

bool Parse(int argc, char** argv, Args* out) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--procs") {
      const char* v = next();
      if (v == nullptr) return false;
      out->procs = static_cast<uint32_t>(std::stoul(v));
    } else if (arg == "--machines") {
      const char* v = next();
      if (v == nullptr) return false;
      out->machines = static_cast<uint32_t>(std::stoul(v));
    } else if (arg == "--partitions") {
      const char* v = next();
      if (v == nullptr) return false;
      out->partitions = static_cast<uint32_t>(std::stoul(v));
    } else if (arg == "--vertices") {
      const char* v = next();
      if (v == nullptr) return false;
      out->vertices = static_cast<uint32_t>(std::stoul(v));
    } else if (arg == "--iterations") {
      const char* v = next();
      if (v == nullptr) return false;
      out->iterations = std::stoi(v);
    } else if (arg == "--artifacts") {
      const char* v = next();
      if (v == nullptr) return false;
      out->artifacts = v;
    } else if (arg == "--heartbeat-ms") {
      const char* v = next();
      if (v == nullptr) return false;
      out->heartbeat_ms = static_cast<uint32_t>(std::stoul(v));
    } else if (arg == "--clock-sync-pings") {
      const char* v = next();
      if (v == nullptr) return false;
      out->clock_sync_pings = static_cast<uint32_t>(std::stoul(v));
    } else if (arg == "--watch") {
      out->watch = true;
    } else {
      std::fprintf(stderr, "surfer_dist: unknown argument %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace surfer;
  Args args;
  if (!Parse(argc, argv, &args)) {
    std::fprintf(stderr,
                 "usage: surfer_dist [--procs N] [--machines M]"
                 " [--partitions P] [--vertices V] [--iterations I]"
                 " [--artifacts DIR] [--heartbeat-ms MS]"
                 " [--clock-sync-pings N] [--watch]\n");
    return 2;
  }

  SocialGraphOptions graph_options;
  graph_options.num_vertices = args.vertices;
  graph_options.avg_out_degree = 8.0;
  graph_options.num_communities = 4;
  graph_options.seed = 33;
  auto graph = GenerateSocialGraph(graph_options);
  if (!graph.ok()) {
    std::fprintf(stderr, "graph generation failed: %s\n",
                 graph.status().ToString().c_str());
    return 1;
  }
  Topology topology = MakeScaledT2(args.machines, 2, 1);
  SurferOptions surfer_options;
  surfer_options.num_partitions = args.partitions;
  auto engine = SurferEngine::Build(*graph, topology, surfer_options);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine build failed: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }
  BenchmarkSetup setup = (*engine)->MakeSetup(OptimizationLevel::kO4);
  setup.sim_options = MakeScaledSimOptions();

  NetworkRankingApp app(graph->num_vertices());
  EngineOptions sequential;
  sequential.propagation = PropagationConfig::ForLevel(OptimizationLevel::kO4);
  sequential.propagation.iterations = args.iterations;
  auto sequential_session = Engine::Open(setup, sequential);
  if (!sequential_session.ok()) {
    std::fprintf(stderr, "sequential open failed: %s\n",
                 sequential_session.status().ToString().c_str());
    return 1;
  }
  auto reference = sequential_session->Run(app);
  if (!reference.ok()) {
    std::fprintf(stderr, "sequential run failed: %s\n",
                 reference.status().ToString().c_str());
    return 1;
  }

  EngineOptions distributed = sequential;
  distributed.engine = EngineKind::kDistributed;
  distributed.distributed.max_processes = args.procs;
  distributed.distributed.artifact_dir = args.artifacts;
  distributed.distributed.heartbeat_period_ms = args.heartbeat_ms;
  distributed.distributed.clock_sync_pings = args.clock_sync_pings;
  if (args.watch) {
    distributed.distributed.status_sink = [](const std::string& table) {
      std::fprintf(stderr, "%s", table.c_str());
    };
  }
  auto distributed_session = Engine::Open(setup, distributed);
  if (!distributed_session.ok()) {
    std::fprintf(stderr, "distributed open failed: %s\n",
                 distributed_session.status().ToString().c_str());
    return 1;
  }
  auto actual = distributed_session->Run(app);
  if (!actual.ok()) {
    std::fprintf(stderr, "distributed run failed: %s\n",
                 actual.status().ToString().c_str());
    return 1;
  }

  // Invariant 1: bit-identical states.
  if (reference->states.size() != actual->states.size() ||
      std::memcmp(reference->states.data(), actual->states.data(),
                  reference->states.size() *
                      sizeof(NetworkRankingApp::VertexState)) != 0) {
    for (size_t v = 0; v < reference->states.size(); ++v) {
      if (std::memcmp(&reference->states[v], &actual->states[v],
                      sizeof(NetworkRankingApp::VertexState)) != 0) {
        std::fprintf(stderr,
                     "FAIL: states diverge at vertex %zu"
                     " (sequential %.17g, distributed %.17g)\n",
                     v, static_cast<double>(reference->states[v]),
                     static_cast<double>(actual->states[v]));
        return 1;
      }
    }
    std::fprintf(stderr, "FAIL: state vector size mismatch\n");
    return 1;
  }

  // Invariant 2: exact per-link byte reconciliation.
  const uint32_t n = topology.num_machines();
  for (uint32_t src = 0; src < n; ++src) {
    for (uint32_t dst = 0; dst < n; ++dst) {
      const size_t i = static_cast<size_t>(src) * n + dst;
      if (reference->link_network_bytes[i] != actual->link_network_bytes[i]) {
        std::fprintf(stderr,
                     "FAIL: link %u->%u bytes diverge"
                     " (model %.0f, measured %.0f)\n",
                     src, dst, reference->link_network_bytes[i],
                     actual->link_network_bytes[i]);
        return 1;
      }
    }
  }

  const auto& stats = *actual->runtime_stats;

  // Health-plane gate: with heartbeats or clock sync on, the run must hand
  // back a cluster report whose critical path covers every driven round,
  // and (with clock sync) offset-corrected per-link latency samples.
  if (args.heartbeat_ms > 0 || args.clock_sync_pings > 0) {
    if (!actual->cluster.has_value() || !actual->cluster->is_object()) {
      std::fprintf(stderr, "FAIL: no cluster report from distributed run\n");
      return 1;
    }
    const obs::JsonValue* critical = actual->cluster->Find("critical_path");
    const obs::JsonValue* steps =
        critical != nullptr ? critical->Find("steps") : nullptr;
    const size_t step_count =
        steps != nullptr && steps->is_array() ? steps->as_array().size() : 0;
    if (step_count != stats.barrier_generations) {
      std::fprintf(stderr,
                   "FAIL: cluster critical path covers %zu rounds,"
                   " expected %llu\n",
                   step_count,
                   static_cast<unsigned long long>(stats.barrier_generations));
      return 1;
    }
    const obs::JsonValue* links = actual->cluster->Find("links");
    const size_t link_count =
        links != nullptr && links->is_array() ? links->as_array().size() : 0;
    if (args.clock_sync_pings > 0 && link_count == 0) {
      std::fprintf(stderr, "FAIL: cluster report has no link samples\n");
      return 1;
    }
    std::printf(
        "    cluster: critical path across %zu rounds, %zu link samples\n",
        step_count, link_count);
  }

  std::printf(
      "OK: %u procs x %u machines, %d iterations bit-identical;"
      " %llu network bytes reconciled exactly across %u links\n",
      stats.num_processes, stats.num_machines, args.iterations,
      static_cast<unsigned long long>(stats.TotalNetworkBytes()),
      n * (n - 1));
  std::printf(
      "    tcp: %llu frames, %llu bytes on the wire;"
      " %llu tasks, %llu barrier rounds, peak worker rss %llu MiB\n",
      static_cast<unsigned long long>(stats.tcp_frames_sent),
      static_cast<unsigned long long>(stats.tcp_bytes_sent),
      static_cast<unsigned long long>(stats.tasks_executed),
      static_cast<unsigned long long>(stats.barrier_generations),
      static_cast<unsigned long long>(stats.peak_rss_bytes >> 20));
  return 0;
}
